// Table I reproduction: extracted bump features of lane-change maneuvers.
//
// The paper runs steering experiments with ten drivers at 15-65 km/h,
// smooths the measured steering rate profiles, and extracts for left/right
// lane changes the positive/negative bump magnitudes (delta) and durations
// above 0.7*delta (T). The detection thresholds are the minima over all
// drivers. We rerun that experiment with ten simulated driver styles and
// gyro-grade measurement noise, print our Table I, and report the
// calibrated thresholds next to the paper's.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/bump.hpp"
#include "math/loess.hpp"
#include "math/rng.hpp"
#include "vehicle/lane_change.hpp"

namespace {

using namespace rge;

struct DriverFeatures {
  double delta_l_pos = 0.0, delta_l_neg = 0.0;
  double t_l_pos = 0.0, t_l_neg = 0.0;
  double delta_r_pos = 0.0, delta_r_neg = 0.0;
  double t_r_pos = 0.0, t_r_neg = 0.0;
  int count = 0;
};

/// Measure one maneuver through a noisy, smoothed steering-rate profile —
/// the same path the deployed detector sees.
core::ManeuverFeatures measure_noisy(const vehicle::LaneChangeManeuver& m,
                                     math::Rng& rng) {
  const double rate = 10.0;  // detector rate
  const double pad = 2.0;
  std::vector<double> t;
  std::vector<double> w;
  for (double x = -pad; x <= m.duration_s() + pad; x += 1.0 / rate) {
    t.push_back(x);
    w.push_back(m.steering_rate(x) + rng.gaussian(0.0, 0.008));
  }
  math::LoessConfig lo;
  lo.span = 8.0 / static_cast<double>(t.size());
  const math::LoessSmoother smoother(lo);
  const auto smoothed = smoother.fit(t, w);
  return core::measure_maneuver(t, smoothed);
}

}  // namespace

int main() {
  bench::print_header("Table I: extracted bump features of lane changes",
                      "paper Table I (Section III-B1)");

  const int kDrivers = 10;
  const int kManeuversPerDriver = 12;
  vehicle::DriverSteeringStyle style;

  std::vector<DriverFeatures> drivers(kDrivers);
  math::Rng root(2019);

  for (int d = 0; d < kDrivers; ++d) {
    math::Rng rng = root.fork(static_cast<std::uint64_t>(d));
    DriverFeatures& f = drivers[d];
    for (int k = 0; k < kManeuversPerDriver; ++k) {
      // Paper's experiment band: 15-65 km/h.
      const double speed = rng.uniform(15.0, 65.0) / 3.6;
      const double peak = style.sample_peak_rate(rng);
      const bool left = k % 2 == 0;
      const vehicle::LaneChangeManeuver m(
          left ? vehicle::LaneChangeDirection::kLeft
               : vehicle::LaneChangeDirection::kRight,
          peak, speed);
      const auto feats = measure_noisy(m, rng);
      if (!feats.complete) continue;
      if (left) {
        f.delta_l_pos += feats.delta_pos;
        f.delta_l_neg += feats.delta_neg;
        f.t_l_pos += feats.t_pos;
        f.t_l_neg += feats.t_neg;
      } else {
        f.delta_r_pos += feats.delta_pos;
        f.delta_r_neg += feats.delta_neg;
        f.t_r_pos += feats.t_pos;
        f.t_r_neg += feats.t_neg;
      }
      ++f.count;
    }
    const double n = f.count / 2.0;
    f.delta_l_pos /= n;
    f.delta_l_neg /= n;
    f.t_l_pos /= n;
    f.t_l_neg /= n;
    f.delta_r_pos /= n;
    f.delta_r_neg /= n;
    f.t_r_pos /= n;
    f.t_r_neg /= n;
  }

  std::printf("\nper-driver averages (rad/s and seconds):\n");
  std::printf("%-8s %8s %8s %8s %8s %8s %8s %8s %8s\n", "driver", "dL+",
              "dL-", "dR+", "dR-", "TL+", "TL-", "TR+", "TR-");
  DriverFeatures minima;
  minima.delta_l_pos = minima.delta_l_neg = 1e9;
  minima.delta_r_pos = minima.delta_r_neg = 1e9;
  minima.t_l_pos = minima.t_l_neg = 1e9;
  minima.t_r_pos = minima.t_r_neg = 1e9;
  for (int d = 0; d < kDrivers; ++d) {
    const auto& f = drivers[d];
    std::printf("%-8d %8.4f %8.4f %8.4f %8.4f %8.3f %8.3f %8.3f %8.3f\n",
                d + 1, f.delta_l_pos, f.delta_l_neg, f.delta_r_pos,
                f.delta_r_neg, f.t_l_pos, f.t_l_neg, f.t_r_pos, f.t_r_neg);
    minima.delta_l_pos = std::min(minima.delta_l_pos, f.delta_l_pos);
    minima.delta_l_neg = std::min(minima.delta_l_neg, f.delta_l_neg);
    minima.delta_r_pos = std::min(minima.delta_r_pos, f.delta_r_pos);
    minima.delta_r_neg = std::min(minima.delta_r_neg, f.delta_r_neg);
    minima.t_l_pos = std::min(minima.t_l_pos, f.t_l_pos);
    minima.t_l_neg = std::min(minima.t_l_neg, f.t_l_neg);
    minima.t_r_pos = std::min(minima.t_r_pos, f.t_r_pos);
    minima.t_r_neg = std::min(minima.t_r_neg, f.t_r_neg);
  }

  const double delta_min =
      std::min({minima.delta_l_pos, minima.delta_l_neg, minima.delta_r_pos,
                minima.delta_r_neg});
  const double t_min = std::min(
      {minima.t_l_pos, minima.t_l_neg, minima.t_r_pos, minima.t_r_neg});

  std::printf("\nTable I (minima over drivers):\n");
  std::printf("%-22s %10s %10s %10s %10s %12s\n", "", "dL", "dL-", "dR",
              "dR-", "min (rad/s)");
  std::printf("%-22s %10.4f %10.4f %10.4f %10.4f %12.4f\n",
              "delta (ours)", minima.delta_l_pos, minima.delta_l_neg,
              minima.delta_r_pos, minima.delta_r_neg, delta_min);
  std::printf("%-22s %10.4f %10.4f %10.4f %10.4f %12.4f\n",
              "delta (paper)", 0.1215, 0.1445, 0.1723, 0.1167, 0.1167);
  std::printf("%-22s %10.3f %10.3f %10.3f %10.3f %12.3f\n", "T (ours)",
              minima.t_l_pos, minima.t_l_neg, minima.t_r_pos, minima.t_r_neg,
              t_min);
  std::printf("%-22s %10.3f %10.3f %10.3f %10.3f %12.3f\n", "T (paper)",
              1.625, 1.766, 1.383, 2.072, 1.383);

  std::printf(
      "\ncalibrated thresholds (0.95 x minima): delta_min = %.4f rad/s, "
      "T_min = %.3f s\n"
      "library defaults (0.10 rad/s, 0.55 s) keep extra margin below the\n"
      "calibrated minima for driver styles/speeds beyond this experiment.\n",
      0.95 * delta_min, 0.95 * t_min);
  std::printf(
      "note: delta magnitudes match the paper closely; our maneuver family\n"
      "completes lane changes faster at high speed, so T minima land below\n"
      "the paper's 1.383 s — same feature, different driver population.\n");
  return 0;
}
