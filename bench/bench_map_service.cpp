// Map-service bench: the sharded city-scale serving layer under a
// 10,000-vehicle fleet (the deployment the paper's cloud section sketches).
//
// The whole 164.8 km network (Fig. 7(a)) is tiled and sharded; the fleet
// uploads partial-trip gradient tracks keyed by road odometry. Measured:
//   * ingest throughput (fixes/sec) of deterministic batch ingest on a
//     pool, vs the same uploads through a single-shard serial service;
//   * publish() latency percentiles (snapshot rebuild + pointer swap)
//     interleaved with ingest;
//   * snapshot() latency percentiles (the reader path — a shared_ptr
//     copy, O(1) regardless of map size);
//   * per-shard ingest counters via the obs layer.
//
// Correctness anchor: the sharded service's published map is checked
// bit-identical to the single-shard serial service, road by road, cell by
// cell. Numbers land in BENCH_map_service.json — the perf-trajectory
// artifact also emitted by tests/test_map_service_perf.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "common.hpp"
#include "math/stats.hpp"
#include "obs/obs.hpp"
#include "road/network.hpp"
#include "runtime/thread_pool.hpp"
#include "service/map_service.hpp"
#include "testing/json.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(const Clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Partial-trip upload: the road's true grade plus per-vehicle noise,
/// sampled every ~5 m over a random sub-span. Accuracy is not the point
/// here (the cloud-fusion bench covers it); shape and volume are.
rge::service::TrackUpload synth_upload(const rge::road::RoadNetwork& net,
                                       std::uint32_t vehicle,
                                       std::mt19937& rng) {
  using rge::service::RoadId;
  std::uniform_int_distribution<std::size_t> pick(0, net.size() - 1);
  const auto road_id = static_cast<RoadId>(pick(rng));
  const rge::road::Road& road = net.roads()[road_id].road;
  const double len = road.length_m();
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const double s0 = u(rng) * std::max(0.0, len - 250.0);
  const double s1 = std::min(len, s0 + 250.0 + u(rng) * (len - s0 - 250.0));
  const auto n = std::max<std::size_t>(16, static_cast<std::size_t>((s1 - s0) / 5.0));

  rge::service::TrackUpload up;
  up.road = road_id;
  up.track.source = "veh-" + std::to_string(vehicle);
  std::normal_distribution<double> noise(0.0, 0.004);
  std::uniform_real_distribution<double> var(1e-5, 4e-5);
  up.track.t.resize(n);
  up.track.s.resize(n);
  up.track.grade.resize(n);
  up.track.grade_var.resize(n);
  up.track.speed.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(n - 1);
    const double s = s0 + f * (s1 - s0);
    up.track.s[i] = s;
    up.track.t[i] = s / 12.5;
    up.track.grade[i] = road.grade_at(s) + noise(rng);
    up.track.grade_var[i] = var(rng);
    up.track.speed[i] = 12.5;
  }
  return up;
}

bool views_identical(const rge::service::RoadView& a,
                     const rge::service::RoadView& b) {
  return a.cells == b.cells && a.coverage == b.coverage &&
         a.track.grade == b.track.grade &&
         a.track.grade_var == b.track.grade_var &&
         a.track.speed == b.track.speed && a.track.t == b.track.t &&
         a.track.s == b.track.s;
}

}  // namespace

int main() {
  using namespace rge;
  bench::print_header(
      "Map service: 10k-vehicle fleet on the sharded city network",
      "serving layer for the paper's crowd-sourced gradient map");

  obs::set_enabled(true);

  const road::RoadNetwork network = road::make_city_network(2019);
  service::MapServiceConfig cfg;
  cfg.n_shards = 8;
  cfg.tile_length_m = 2000.0;
  cfg.fusion.distance_step_m = 5.0;
  service::MapService svc(network, cfg);
  std::printf("network: %zu roads, %.1f km -> %zu tiles on %zu shards\n",
              network.size(), network.total_length_m() / 1000.0,
              svc.n_tiles(), svc.n_shards());

  // ---- fleet ----------------------------------------------------------
  constexpr std::size_t kFleet = 10000;
  constexpr std::size_t kBatch = 200;  // uploads per ingest batch
  std::vector<service::TrackUpload> fleet;
  fleet.reserve(kFleet);
  std::mt19937 rng(42);
  std::size_t total_fixes = 0;
  for (std::size_t v = 0; v < kFleet; ++v) {
    fleet.push_back(synth_upload(network, static_cast<std::uint32_t>(v), rng));
    total_fixes += fleet.back().track.s.size();
  }
  std::printf("fleet: %zu uploads, %zu fixes (%.0f per upload)\n", kFleet,
              total_fixes, static_cast<double>(total_fixes) / kFleet);

  // ---- sharded ingest + interleaved publishes -------------------------
  runtime::ThreadPool pool(4);
  std::vector<double> publish_ms;
  double ingest_ms_total = 0.0;
  for (std::size_t b = 0; b < kFleet / kBatch; ++b) {
    const std::vector<service::TrackUpload> batch(
        fleet.begin() + static_cast<std::ptrdiff_t>(b * kBatch),
        fleet.begin() + static_cast<std::ptrdiff_t>((b + 1) * kBatch));
    const auto t_in = Clock::now();
    svc.ingest(batch, &pool);
    ingest_ms_total += ms_since(t_in);
    const auto t_pub = Clock::now();
    svc.publish(&pool);
    publish_ms.push_back(ms_since(t_pub));
  }
  const double fixes_per_sec =
      static_cast<double>(total_fixes) / (ingest_ms_total / 1000.0);

  // ---- reader path: snapshot() is a pinned pointer copy ---------------
  std::vector<double> snapshot_us;
  for (int i = 0; i < 2000; ++i) {
    const auto t0 = Clock::now();
    const auto snap = svc.snapshot();
    snapshot_us.push_back(1000.0 * ms_since(t0));
    if (snap->epoch == 0) return 1;  // unreachable; keeps snap live
  }
  std::sort(snapshot_us.begin(), snapshot_us.end());

  const auto final_snap = svc.snapshot();
  std::size_t covered = 0;
  for (const auto& view : final_snap->roads) covered += view.size();

  std::printf(
      "\ningest: %.0f ms total -> %.2fM fixes/sec (batches of %zu on %zu "
      "worker threads)\n",
      ingest_ms_total, fixes_per_sec / 1e6, kBatch, pool.size());
  std::printf(
      "publish: p50 %.2f ms, p90 %.2f ms, p99 %.2f ms (%zu publishes, "
      "epoch %llu, %zu covered cells)\n",
      math::percentile(publish_ms, 0.5), math::percentile(publish_ms, 0.9),
      math::percentile(publish_ms, 0.99), publish_ms.size(),
      static_cast<unsigned long long>(final_snap->epoch), covered);
  std::printf("snapshot: p50 %.2f us, p99 %.2f us\n",
              math::percentile(snapshot_us, 0.5),
              math::percentile(snapshot_us, 0.99));

  // ---- correctness anchor: single-shard serial reference --------------
  service::MapServiceConfig ref_cfg = cfg;
  ref_cfg.n_shards = 1;
  service::MapService ref(network, ref_cfg);
  const auto t_ref = Clock::now();
  ref.ingest(fleet);  // one batch, no pool: pure serial fusion
  const double ref_ingest_ms = ms_since(t_ref);
  ref.publish();
  const auto ref_snap = ref.snapshot();
  bool identical = ref_snap->roads.size() == final_snap->roads.size();
  for (std::size_t r = 0; identical && r < ref_snap->roads.size(); ++r) {
    identical = views_identical(ref_snap->roads[r], final_snap->roads[r]);
  }
  std::printf(
      "\nreference single-shard serial ingest: %.0f ms (%.2fM fixes/sec); "
      "published maps bit-identical: %s\n",
      ref_ingest_ms, total_fixes / ref_ingest_ms / 1000.0,
      identical ? "yes" : "NO");

  // ---- per-shard counters (local stats + obs mirror) ------------------
  const auto obs_snap = obs::Registry::global().snapshot();
  auto obs_counter = [&](const std::string& name) {
    const auto it = obs_snap.counters.find(name);
    return it == obs_snap.counters.end() ? std::int64_t{0} : it->second;
  };
  std::printf("\n%-6s %8s %8s %12s %14s %14s\n", "shard", "tiles", "roads",
              "tracks", "samples", "covered");
  testing::Json::Array shard_rows;
  shard_rows.reserve(svc.n_shards());
  for (const auto& st : svc.shard_stats()) {
    const std::string prefix = "service.shard" + std::to_string(st.shard);
    std::printf("%-6zu %8zu %8zu %12llu %14llu %14llu\n", st.shard,
                st.n_tiles, st.n_roads,
                static_cast<unsigned long long>(st.tracks_ingested),
                static_cast<unsigned long long>(st.samples_ingested),
                static_cast<unsigned long long>(st.covered_cells));
    testing::Json::Object row;
    row["shard"] = testing::Json(st.shard);
    row["tiles"] = testing::Json(st.n_tiles);
    row["roads"] = testing::Json(st.n_roads);
    row["tracks_ingested"] = testing::Json(std::size_t{st.tracks_ingested});
    row["samples_ingested"] = testing::Json(std::size_t{st.samples_ingested});
    row["covered_cells"] = testing::Json(std::size_t{st.covered_cells});
    row["obs_tracks"] =
        testing::Json(static_cast<double>(obs_counter(prefix + ".tracks")));
    row["obs_samples"] =
        testing::Json(static_cast<double>(obs_counter(prefix + ".samples")));
    shard_rows.emplace_back(std::move(row));
  }

  // ---- perf-trajectory artifact ---------------------------------------
  testing::Json::Object doc;
  doc["workload"] = testing::Json::Object{
      {"n_vehicles", kFleet},
      {"total_fixes", total_fixes},
      {"n_roads", network.size()},
      {"network_km", network.total_length_m() / 1000.0},
      {"n_tiles", svc.n_tiles()},
      {"n_shards", svc.n_shards()},
      {"tile_length_m", cfg.tile_length_m},
      {"grid_step_m", cfg.fusion.distance_step_m},
      {"batch_size", kBatch},
      {"pool_threads", pool.size()},
  };
  doc["ingest"] = testing::Json::Object{
      {"sharded_ms", ingest_ms_total},
      {"sharded_fixes_per_sec", fixes_per_sec},
      {"single_shard_serial_ms", ref_ingest_ms},
  };
  doc["publish_latency_ms"] = testing::Json::Object{
      {"p50", math::percentile(publish_ms, 0.5)},
      {"p90", math::percentile(publish_ms, 0.9)},
      {"p99", math::percentile(publish_ms, 0.99)},
      {"publishes", publish_ms.size()},
  };
  doc["snapshot_latency_us"] = testing::Json::Object{
      {"p50", math::percentile(snapshot_us, 0.5)},
      {"p99", math::percentile(snapshot_us, 0.99)},
  };
  doc["correctness"] = testing::Json::Object{
      {"covered_cells", covered},
      {"maps_bit_identical", identical},
  };
  doc["shards"] = shard_rows;
  testing::write_json_file(testing::Json(doc), "BENCH_map_service.json");
  std::printf("\nwrote BENCH_map_service.json\n");

  std::printf(
      "\nReading: tiles partition every road's fusion grid into cell "
      "ranges, so shards accumulate disjoint cells and the merged map is "
      "the serial map bit for bit — sharding buys ingest parallelism and "
      "O(1) reader snapshots without giving up reproducibility.\n");
  return identical ? 0 : 1;
}
