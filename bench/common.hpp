// Shared scenario builders and printing helpers for the experiment
// harnesses. Each bench binary reproduces one table or figure of the paper;
// this header centralizes the "drive a road with a phone" plumbing so the
// binaries read like experiment scripts.
#pragma once

#include <string>
#include <vector>

#include "baselines/ann_grade.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "road/network.hpp"
#include "sensors/smartphone.hpp"
#include "vehicle/trip.hpp"

namespace rge::bench {

/// One simulated drive: road + ground truth trip + recorded sensor trace.
struct Drive {
  road::Road road;
  vehicle::Trip trip;
  sensors::SensorTrace trace;
};

struct DriveOptions {
  std::uint64_t trip_seed = 21;
  std::uint64_t phone_seed = 121;
  double lane_changes_per_km = 4.0;
  double cruise_speed_mps = 11.1;  // ~40 km/h, the paper's city average
  int random_gps_outages = 0;
  double stops_per_km = 0.0;
};

/// Drive `road` once with a phone in the default vehicle.
Drive simulate_drive(road::Road road, const DriveOptions& opts = {});

/// The paper's evaluation vehicle.
vehicle::VehicleParams default_vehicle();

/// Train the ANN baseline the way the paper does: an independent labelled
/// drive over the given road, capped at 4,320 samples.
baselines::AnnGradeEstimator train_ann_on(const road::Road& road,
                                          std::uint64_t seed = 990);

/// Per-method evaluation result used by the comparison benches.
struct MethodResult {
  std::string name;
  core::TrackErrorStats stats;
};

/// Run OPS / altitude-EKF / ANN over one drive and evaluate each against
/// the drive's ground truth.
std::vector<MethodResult> compare_methods(
    const Drive& drive, baselines::AnnGradeEstimator& trained_ann,
    const core::PipelineConfig& ops_cfg = {});

/// Same comparison, but with the OPS pipeline result already computed
/// (e.g. by run_pipeline_batch over the whole drive set) so only the two
/// baselines run here.
std::vector<MethodResult> compare_methods(
    const Drive& drive, baselines::AnnGradeEstimator& trained_ann,
    const core::PipelineResult& precomputed_ops);

// ------------------------------ printing ------------------------------

/// Print a section header in a consistent style.
void print_header(const std::string& title, const std::string& paper_ref);

/// Print a CDF as rows of (abs error deg, cumulative probability),
/// sampled at fixed error grid points.
void print_cdf(const std::string& label, const std::vector<double>& samples,
               double max_err_deg = 1.0, std::size_t points = 11);

/// Median of a sample set (convenience).
double median_of(const std::vector<double>& xs);

}  // namespace rge::bench
