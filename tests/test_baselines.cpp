// Tests for the altitude-EKF and ANN baselines, including the paper's
// method ordering (OPS < EKF < ANN error).
#include "baselines/ann_grade.hpp"
#include "baselines/ekf_altitude.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "math/angles.hpp"
#include "road/network.hpp"
#include "sensors/smartphone.hpp"
#include "vehicle/trip.hpp"

namespace rge::baselines {
namespace {

using math::deg2rad;

struct Scenario {
  road::Road road;
  vehicle::Trip trip;
  sensors::SensorTrace trace;
};

Scenario make_scenario(const road::Road& road, std::uint64_t seed) {
  Scenario sc{road, {}, {}};
  vehicle::TripConfig tc;
  tc.seed = seed;
  tc.lane_changes_per_km = 4.0;
  sc.trip = vehicle::simulate_trip(sc.road, tc);
  sensors::SmartphoneConfig pc;
  pc.seed = seed + 11;
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       vehicle::VehicleParams{}, pc);
  return sc;
}

std::vector<AnnSample> samples_from(const Scenario& sc, double rate_hz) {
  std::vector<double> ts;
  std::vector<double> gs;
  for (const auto& st : sc.trip.states) {
    ts.push_back(st.t);
    gs.push_back(st.grade);
  }
  return make_training_samples(sc.trace, ts, gs, rate_hz);
}

TEST(AltitudeEkf, EmptyTraceThrows) {
  EXPECT_THROW(
      run_altitude_ekf(sensors::SensorTrace{}, vehicle::VehicleParams{}),
      std::invalid_argument);
}

TEST(AltitudeEkf, RecoversGradeShape) {
  const Scenario sc = make_scenario(road::make_table3_route(2019), 5);
  const auto track = run_altitude_ekf(sc.trace, vehicle::VehicleParams{});
  ASSERT_FALSE(track.t.empty());
  const auto stats = core::evaluate_track(track, sc.trip);
  // Not great (barometer-limited) but clearly informative.
  EXPECT_LT(stats.median_abs_deg, 1.2);
  EXPECT_LT(stats.mre, 0.5);
}

TEST(AltitudeEkf, TracksAltitudeRoughly) {
  const Scenario sc = make_scenario(road::make_table3_route(2019), 6);
  const auto track = run_altitude_ekf(sc.trace, vehicle::VehicleParams{});
  // Speed estimate should be close to the truth throughout.
  std::size_t si = 0;
  double err_acc = 0.0;
  for (std::size_t i = 0; i < track.t.size(); ++i) {
    while (si + 1 < sc.trip.states.size() &&
           sc.trip.states[si].t < track.t[i]) {
      ++si;
    }
    err_acc += std::abs(track.speed[i] - sc.trip.states[si].speed);
  }
  EXPECT_LT(err_acc / static_cast<double>(track.t.size()), 0.5);
}

TEST(AnnGrade, TrainValidation) {
  AnnGradeEstimator ann;
  EXPECT_THROW(ann.train({}), std::invalid_argument);
  EXPECT_THROW((void)ann.predict(1.0, 0.0, 100.0), std::logic_error);
  EXPECT_THROW((void)ann.run(sensors::SensorTrace{}), std::logic_error);
}

TEST(AnnGrade, LearnsFromLabelledDrive) {
  const Scenario sc = make_scenario(road::make_table3_route(2019), 7);
  const auto samples = samples_from(sc, 21.0);
  ASSERT_GE(samples.size(), 1000u);
  AnnGradeEstimator ann;
  const double mse = ann.train(samples);
  EXPECT_TRUE(ann.trained());
  EXPECT_LT(mse, 1.0);  // normalized label space
  // Evaluate on a different drive over the same route.
  const Scenario eval = make_scenario(road::make_table3_route(2019), 8);
  const auto track = ann.run(eval.trace);
  const auto stats = core::evaluate_track(track, eval.trip);
  EXPECT_LT(stats.mre, 0.8);
}

TEST(AnnGrade, RespectsSampleCap) {
  const Scenario sc = make_scenario(road::make_table3_route(2019), 9);
  auto samples = samples_from(sc, 50.0);
  ASSERT_GT(samples.size(), 4320u);
  AnnGradeConfig cfg;
  cfg.epochs = 5;
  AnnGradeEstimator ann(cfg);
  ann.train(samples);  // must not throw; extra samples ignored
  EXPECT_TRUE(ann.trained());
}

TEST(AnnGrade, MakeTrainingSamplesValidation) {
  const Scenario sc = make_scenario(road::make_table3_route(2019), 10);
  EXPECT_THROW(make_training_samples(sc.trace, std::vector<double>{},
                                     std::vector<double>{}, 2.0),
               std::invalid_argument);
  EXPECT_THROW(make_training_samples(sc.trace, std::vector<double>{1.0},
                                     std::vector<double>{1.0, 2.0}, 2.0),
               std::invalid_argument);
}

TEST(MethodOrdering, OpsBeatsEkfBeatsAnn) {
  // The paper's headline comparison (Fig. 8/9): OPS < EKF < ANN error.
  const road::Road route = road::make_table3_route(2019);

  // Train the ANN on an independent drive, as the paper does (4,320
  // labelled samples).
  const Scenario train = make_scenario(route, 99);
  AnnGradeEstimator ann;
  ann.train(samples_from(train, 21.0));

  double ops_acc = 0.0;
  double ekf_acc = 0.0;
  double ann_acc = 0.0;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const Scenario sc = make_scenario(route, seed);
    const auto ops =
        core::estimate_gradient(sc.trace, vehicle::VehicleParams{});
    ops_acc += core::evaluate_track(ops.fused, sc.trip).mre;
    const auto ekf = run_altitude_ekf(sc.trace, vehicle::VehicleParams{});
    ekf_acc += core::evaluate_track(ekf, sc.trip).mre;
    const auto ann_track = ann.run(sc.trace);
    ann_acc += core::evaluate_track(ann_track, sc.trip).mre;
  }
  EXPECT_LT(ops_acc, ekf_acc);
  EXPECT_LT(ekf_acc, ann_acc);
}

}  // namespace
}  // namespace rge::baselines
