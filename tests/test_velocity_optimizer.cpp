// Unit tests for the fuel-optimal velocity profile DP.
#include "planning/velocity_optimizer.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"

namespace rge::planning {
namespace {

using math::deg2rad;

std::vector<double> flat(std::size_t n) { return std::vector<double>(n, 0.0); }

TEST(VelocityOptimizer, Validation) {
  EXPECT_THROW(optimize_velocity({}, 10.0), std::invalid_argument);
  VelocityOptimizerConfig bad;
  bad.distance_step_m = 0.0;
  EXPECT_THROW(optimize_velocity(flat(4), 10.0, bad),
               std::invalid_argument);
  bad = {};
  bad.speed_bins = 1;
  EXPECT_THROW(optimize_velocity(flat(4), 10.0, bad),
               std::invalid_argument);
  bad = {};
  bad.max_decel = 1.0;
  EXPECT_THROW(optimize_velocity(flat(4), 10.0, bad),
               std::invalid_argument);
  EXPECT_THROW(constant_speed_plan(flat(4), 0.0), std::invalid_argument);
}

TEST(VelocityOptimizer, PlanShapesAreConsistent) {
  const auto grades = flat(40);
  const VelocityPlan plan = optimize_velocity(grades, 10.0);
  ASSERT_EQ(plan.s.size(), grades.size() + 1);
  ASSERT_EQ(plan.speed.size(), grades.size() + 1);
  EXPECT_DOUBLE_EQ(plan.s.front(), 0.0);
  EXPECT_DOUBLE_EQ(plan.s.back(), 40 * 25.0);
  EXPECT_GT(plan.fuel_gal, 0.0);
  EXPECT_GT(plan.duration_s, 0.0);
  VelocityOptimizerConfig cfg;
  for (double v : plan.speed) {
    EXPECT_GE(v, cfg.speed_min_mps - 1e-9);
    EXPECT_LE(v, cfg.speed_max_mps + 1e-9);
  }
}

TEST(VelocityOptimizer, RespectsAccelBounds) {
  std::vector<double> grades(60, 0.0);
  // A sudden steep hill in the middle.
  for (std::size_t i = 25; i < 35; ++i) grades[i] = deg2rad(6.0);
  const VelocityPlan plan = optimize_velocity(grades, 12.0);
  VelocityOptimizerConfig cfg;
  for (std::size_t i = 1; i < plan.speed.size(); ++i) {
    const double v1 = plan.speed[i - 1];
    const double v2 = plan.speed[i];
    const double a = (v2 * v2 - v1 * v1) / (2.0 * cfg.distance_step_m);
    EXPECT_LE(a, cfg.max_accel + 1e-9);
    EXPECT_GE(a, cfg.max_decel - 1e-9);
  }
}

TEST(VelocityOptimizer, BeatsConstantSpeedOnHillyProfile) {
  // Alternating hills: the optimizer should save fuel at comparable cost
  // (its objective includes the same time weight).
  std::vector<double> grades;
  for (int block = 0; block < 6; ++block) {
    const double g = deg2rad(block % 2 == 0 ? 4.0 : -4.0);
    for (int i = 0; i < 20; ++i) grades.push_back(g);
  }
  VelocityOptimizerConfig cfg;
  const VelocityPlan opt = optimize_velocity(grades, 11.0, cfg);
  const VelocityPlan cruise = constant_speed_plan(grades, 11.0, cfg);
  const double opt_cost =
      opt.fuel_gal + cfg.time_weight_gal_per_h * opt.duration_s / 3600.0;
  const double cruise_cost = cruise.fuel_gal + cfg.time_weight_gal_per_h *
                                                   cruise.duration_s / 3600.0;
  EXPECT_LT(opt_cost, cruise_cost);
}

TEST(VelocityOptimizer, PureFuelObjectiveFindsSweetSpot) {
  // With no value of time the fuel optimum sits at the gal/km minimum:
  // the idle floor makes crawling wasteful, aero drag makes speeding
  // wasteful, so the optimum lands in between (roughly 6-11 m/s for the
  // Table II car).
  VelocityOptimizerConfig cfg;
  cfg.time_weight_gal_per_h = 0.0;
  const VelocityPlan plan = optimize_velocity(flat(30), 15.0, cfg);
  EXPECT_GT(plan.speed.back(), 4.0);
  EXPECT_LT(plan.speed.back(), 12.0);
}

TEST(VelocityOptimizer, HighTimeValueSpeedsUp) {
  VelocityOptimizerConfig hurry;
  hurry.time_weight_gal_per_h = 20.0;
  VelocityOptimizerConfig eco;
  eco.time_weight_gal_per_h = 0.3;
  const VelocityPlan fast = optimize_velocity(flat(30), 10.0, hurry);
  const VelocityPlan slow = optimize_velocity(flat(30), 10.0, eco);
  EXPECT_GT(fast.speed.back(), slow.speed.back());
  EXPECT_LT(fast.duration_s, slow.duration_s);
  EXPECT_GT(fast.fuel_gal, slow.fuel_gal);
}

TEST(VelocityOptimizer, SpeedsUpOnIdleFloorDownhills) {
  // Look-ahead behaviour specific to the VSP model: the uphill fuel term
  // B*m*sin(theta)*distance is speed-independent, but on a downhill the
  // engine sits at the idle floor, so fuel there is floor * time — the
  // optimizer exploits known gradients by rolling through descents faster
  // than it cruises on the flat.
  std::vector<double> grades(80, 0.0);
  for (std::size_t i = 40; i < 60; ++i) grades[i] = deg2rad(-4.0);
  const VelocityPlan plan = optimize_velocity(grades, 12.0);
  double downhill_v = 0.0;
  for (std::size_t i = 46; i < 56; ++i) downhill_v += plan.speed[i];
  downhill_v /= 10.0;
  double flat_v = 0.0;
  for (std::size_t i = 10; i < 20; ++i) flat_v += plan.speed[i];
  flat_v /= 10.0;
  EXPECT_GT(downhill_v, flat_v + 1.0);
}

TEST(ConstantSpeedPlan, FuelMatchesVspIntegral) {
  const std::vector<double> grades(10, deg2rad(2.0));
  VelocityOptimizerConfig cfg;
  const VelocityPlan plan = constant_speed_plan(grades, 12.0, cfg);
  const double dt = cfg.distance_step_m / 12.0;
  const double expected =
      10.0 * emissions::fuel_used_gal(12.0, 0.0, deg2rad(2.0), dt, cfg.vsp);
  EXPECT_NEAR(plan.fuel_gal, expected, 1e-12);
  EXPECT_NEAR(plan.duration_s, 10.0 * dt, 1e-12);
}

TEST(TimeBudgetOptimizer, MatchesTargetDuration) {
  std::vector<double> grades(60, 0.0);
  for (std::size_t i = 20; i < 40; ++i) grades[i] = deg2rad(3.0);
  VelocityOptimizerConfig cfg;
  const auto cruise = constant_speed_plan(grades, 11.0, cfg);
  const auto plan = optimize_velocity_with_time_budget(
      grades, 11.0, cruise.duration_s, cfg);
  EXPECT_NEAR(plan.duration_s, cruise.duration_s,
              0.05 * cruise.duration_s);
  EXPECT_THROW(
      optimize_velocity_with_time_budget(grades, 11.0, 0.0, cfg),
      std::invalid_argument);
}

TEST(TimeBudgetOptimizer, SavesFuelAtEqualTimeOnHills) {
  std::vector<double> grades;
  for (int block = 0; block < 6; ++block) {
    const double g = deg2rad(block % 2 == 0 ? 4.0 : -4.0);
    for (int i = 0; i < 20; ++i) grades.push_back(g);
  }
  VelocityOptimizerConfig cfg;
  const auto cruise = constant_speed_plan(grades, 11.0, cfg);
  const auto plan = optimize_velocity_with_time_budget(
      grades, 11.0, cruise.duration_s, cfg);
  EXPECT_LT(plan.fuel_gal, cruise.fuel_gal);
  EXPECT_LE(plan.duration_s, cruise.duration_s * 1.05);
}

// Parameterized: optimizer total cost never exceeds constant-cruise cost
// at any cruise speed inside the grid (cruise is a feasible DP path).
class OptimizerDominance : public ::testing::TestWithParam<double> {};

TEST_P(OptimizerDominance, NoWorseThanCruise) {
  std::vector<double> grades;
  for (int i = 0; i < 50; ++i) {
    grades.push_back(deg2rad(3.0 * std::sin(0.2 * i)));
  }
  VelocityOptimizerConfig cfg;
  const double v = GetParam();
  const VelocityPlan opt = optimize_velocity(grades, v, cfg);
  const VelocityPlan cruise = constant_speed_plan(grades, v, cfg);
  const double opt_cost =
      opt.fuel_gal + cfg.time_weight_gal_per_h * opt.duration_s / 3600.0;
  const double cruise_cost = cruise.fuel_gal + cfg.time_weight_gal_per_h *
                                                   cruise.duration_s / 3600.0;
  EXPECT_LE(opt_cost, cruise_cost + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Speeds, OptimizerDominance,
                         ::testing::Values(5.0, 8.0, 11.0, 14.0, 17.0));

}  // namespace
}  // namespace rge::planning
