// Perf-tier budgets for the SoA batch kernels (ctest -L perf):
//
//   * GradeEkfBatch::predict over a 1000-vehicle fleet must beat stepping
//     1000 scalar GradeEkf instances by >= 4x per core;
//   * loess_fit_batch over a lock-stepped fleet's shared grid must beat
//     per-series LoessSmoother::fit by >= 4x;
//   * batched resample_sorted must not lose to per-query interpolation
//     (>= 1x guard; it is bit-exact, so any win is free).
//
// Budgets only apply to RGE_SIMD=ON builds (the OFF fallback is the scalar
// code by construction — the test SKIPs) and are relaxed to 2x under
// sanitizers, whose instrumentation flattens vector gains. Measured
// numbers land in BENCH_batch_kernels.json (override with
// RGE_BENCH_BATCH_KERNELS_OUT) as this workload's perf-trajectory
// artifact.
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/grade_ekf_batch.hpp"
#include "math/interp.hpp"
#include "math/interp_batch.hpp"
#include "math/loess_batch.hpp"
#include "math/rng.hpp"
#include "math/simd.hpp"
#include "testing/json.hpp"

namespace rge::core {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(const Clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

constexpr double kBudget = kSanitized ? 2.0 : 4.0;

TEST(BatchKernelsPerf, FleetSpeedupsMeetBudget) {
  if constexpr (!math::simd_enabled()) {
    GTEST_SKIP() << "RGE_SIMD=OFF: batch kernels are the scalar code";
  }

  const vehicle::VehicleParams params{};
  const GradeEkfConfig cfg{};
  math::Rng rng(51);

  // ---- EKF predict: 1000 lanes x kSteps ------------------------------
  constexpr std::size_t kLanes = 1000;
  const std::size_t ekf_steps = kSanitized ? 400 : 2000;
  std::vector<double> v0(kLanes);
  std::vector<double> th0(kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    v0[l] = rng.uniform(3.0, 30.0);
    th0[l] = rng.uniform(-0.08, 0.08);
  }
  std::vector<double> f(kLanes);
  std::vector<double> dt(kLanes, 0.02);
  for (auto& x : f) x = rng.uniform(-3.0, 3.0);

  std::vector<GradeEkf> fleet;
  fleet.reserve(kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    fleet.emplace_back(params, cfg, v0[l], th0[l]);
  }
  GradeEkfBatch batch(kLanes, params, cfg);
  for (std::size_t l = 0; l < kLanes; ++l) batch.seed(l, v0[l], th0[l]);

  // Warm both paths (page in code + state).
  for (std::size_t l = 0; l < kLanes; ++l) fleet[l].predict(f[l], 0.02);
  batch.predict(f, dt);

  const auto t_scalar = Clock::now();
  for (std::size_t s = 0; s < ekf_steps; ++s) {
    for (std::size_t l = 0; l < kLanes; ++l) fleet[l].predict(f[l], 0.02);
  }
  const double ekf_scalar_ms = ms_since(t_scalar);
  const auto t_batch = Clock::now();
  for (std::size_t s = 0; s < ekf_steps; ++s) batch.predict(f, dt);
  const double ekf_batch_ms = ms_since(t_batch);
  const double ekf_speedup = ekf_scalar_ms / ekf_batch_ms;
  // Keep the optimizer honest: consume both results.
  double checksum = 0.0;
  for (std::size_t l = 0; l < kLanes; ++l) {
    checksum += batch.grade(l) + fleet[l].grade();
  }
  ASSERT_TRUE(std::isfinite(checksum));

  EXPECT_GE(ekf_speedup, kBudget)
      << "EKF fleet predict: scalar " << ekf_scalar_ms << " ms vs batch "
      << ekf_batch_ms << " ms";

  // ---- LOESS: shared grid, one series per vehicle --------------------
  const std::size_t loess_series = kSanitized ? 48 : 128;
  const std::size_t loess_n = 400;
  std::vector<double> x(loess_n);
  double t = 0.0;
  for (auto& xi : x) {
    t += rng.uniform(0.01, 0.05);
    xi = t;
  }
  std::vector<double> ys(loess_series * loess_n);
  for (auto& y : ys) y = rng.gaussian(0.0, 1.0);
  math::LoessConfig lcfg;
  lcfg.span = 0.2;
  lcfg.degree = 1;
  const math::LoessSmoother scalar_smoother(lcfg);

  // Warm.
  auto warm_scalar = scalar_smoother.fit(
      x, std::span<const double>(ys).subspan(0, loess_n));
  auto warm_batch = math::loess_fit_batch(lcfg, x, ys, loess_series);
  ASSERT_TRUE(std::isfinite(warm_scalar[0] + warm_batch[0]));

  const auto t_lscalar = Clock::now();
  double lsum = 0.0;
  for (std::size_t b = 0; b < loess_series; ++b) {
    const auto fit = scalar_smoother.fit(
        x, std::span<const double>(ys).subspan(b * loess_n, loess_n));
    lsum += fit.back();
  }
  const double loess_scalar_ms = ms_since(t_lscalar);
  const auto t_lbatch = Clock::now();
  const auto lbatch = math::loess_fit_batch(lcfg, x, ys, loess_series);
  const double loess_batch_ms = ms_since(t_lbatch);
  lsum += lbatch.back();
  ASSERT_TRUE(std::isfinite(lsum));
  const double loess_speedup = loess_scalar_ms / loess_batch_ms;

  EXPECT_GE(loess_speedup, kBudget)
      << "LOESS fleet smooth: scalar " << loess_scalar_ms
      << " ms vs batch " << loess_batch_ms << " ms";

  // ---- Interp resampling: guard only (bit-exact kernel) --------------
  const std::size_t interp_n = 20000;
  const std::size_t interp_q = 50000;
  std::vector<double> keys(interp_n);
  std::vector<double> vals(interp_n);
  double s = 0.0;
  for (std::size_t i = 0; i < interp_n; ++i) {
    s += rng.uniform(0.01, 1.0);
    keys[i] = s;
    vals[i] = rng.gaussian(0.0, 2.0);
  }
  std::vector<double> queries(interp_q);
  for (std::size_t i = 0; i < interp_q; ++i) {
    queries[i] = s * static_cast<double>(i) / static_cast<double>(interp_q);
  }
  const math::LinearInterpolator interp(keys, vals);
  std::vector<double> out(interp_q);
  math::resample_sorted(keys, vals, queries, out);  // warm

  const auto t_iscalar = Clock::now();
  double isum = 0.0;
  for (std::size_t i = 0; i < interp_q; ++i) isum += interp(queries[i]);
  const double interp_scalar_ms = ms_since(t_iscalar);
  const auto t_ibatch = Clock::now();
  math::resample_sorted(keys, vals, queries, out);
  const double interp_batch_ms = ms_since(t_ibatch);
  for (double v : out) isum += v;
  ASSERT_TRUE(std::isfinite(isum));
  const double interp_speedup = interp_scalar_ms / interp_batch_ms;
  EXPECT_GE(interp_speedup, 1.0)
      << "batched resample lost to per-query interpolation: scalar "
      << interp_scalar_ms << " ms vs batch " << interp_batch_ms << " ms";

  // ---- perf-trajectory artifact --------------------------------------
  testing::Json::Object doc;
  doc["workload"] = testing::Json::Object{
      {"fleet_lanes", kLanes},
      {"ekf_steps", ekf_steps},
      {"loess_series", loess_series},
      {"loess_points", loess_n},
      {"interp_keys", interp_n},
      {"interp_queries", interp_q},
      {"sanitized", kSanitized},
      {"simd", math::simd_enabled()},
  };
  doc["ekf_predict"] = testing::Json::Object{
      {"scalar_ms", ekf_scalar_ms},
      {"batch_ms", ekf_batch_ms},
      {"speedup", ekf_speedup},
      {"budget_min_speedup", kBudget},
  };
  doc["loess"] = testing::Json::Object{
      {"scalar_ms", loess_scalar_ms},
      {"batch_ms", loess_batch_ms},
      {"speedup", loess_speedup},
      {"budget_min_speedup", kBudget},
  };
  doc["interp"] = testing::Json::Object{
      {"scalar_ms", interp_scalar_ms},
      {"batch_ms", interp_batch_ms},
      {"speedup", interp_speedup},
      {"budget_min_speedup", 1.0},
  };
  const char* out_path = std::getenv("RGE_BENCH_BATCH_KERNELS_OUT");
  testing::write_json_file(testing::Json(doc),
                           out_path != nullptr ? out_path
                                               : "BENCH_batch_kernels.json");
}

}  // namespace
}  // namespace rge::core
