// Unit tests for the batch-estimation runtime: thread pool, parallel_for
// (including nesting and exception propagation), and stage metrics.
#include "runtime/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/metrics.hpp"

namespace rge::runtime {
namespace {

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4u);
}

TEST(ThreadPool, SubmittedTasksRun) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallel_for(pool, n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelFor, ZeroIterationsIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, RespectsGrainAndStillCoversAll) {
  ThreadPool pool(3);
  const std::size_t n = 517;  // deliberately not a multiple of the grain
  std::vector<int> hits(n, 0);
  std::mutex mu;
  parallel_for(
      pool, n,
      [&](std::size_t i) {
        std::lock_guard<std::mutex> lock(mu);
        ++hits[i];
      },
      64);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
}

TEST(ParallelFor, NestedLoopsDoNotDeadlock) {
  // Outer trips x inner sources, the exact shape run_pipeline_batch uses.
  // Caller participation guarantees progress even on a pool of size 1.
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kOuter = 6;
    constexpr std::size_t kInner = 8;
    std::vector<std::vector<int>> cells(kOuter,
                                        std::vector<int>(kInner, 0));
    parallel_for(pool, kOuter, [&](std::size_t o) {
      parallel_for(pool, kInner, [&](std::size_t i) { cells[o][i] = 1; });
    });
    for (const auto& row : cells) {
      for (int v : row) ASSERT_EQ(v, 1);
    }
  }
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 100,
                   [](std::size_t i) {
                     if (i == 17) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, DeterministicSlotWrites) {
  // body(i) writing slot i gives results independent of thread count.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(256, 0.0);
    parallel_for(pool, out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 0.1 + 1.0 / (1.0 + i);
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(StageMetrics, ScopedTimerAccumulates) {
  StageMetrics m;
  {
    ScopedTimer t(&m.ekf_ns);
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  }
  EXPECT_GT(m.ekf_ns.load(), 0);
  EXPECT_EQ(m.align_ns.load(), 0);
  m.trips = 3;
  const std::string s = m.summary();
  EXPECT_NE(s.find("trips=3"), std::string::npos);
  EXPECT_NE(s.find("ekf"), std::string::npos);
  m.reset();
  EXPECT_EQ(m.ekf_ns.load(), 0);
  EXPECT_EQ(m.trips.load(), 0);
}

TEST(StageMetrics, NullSinkIsNoOp) {
  ScopedTimer t(nullptr);  // must not crash on destruction
  SUCCEED();
}

}  // namespace
}  // namespace rge::runtime
