// Unit tests for the scenario-matrix harness library itself: the JSON
// round-trip the goldens depend on, the fault injector's contracts, the
// metric extractor, and the committed matrix's shape.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "testing/fault_injection.hpp"
#include "testing/json.hpp"
#include "testing/metrics.hpp"
#include "testing/scenario.hpp"

namespace rge::testing {
namespace {

// ------------------------------- JSON ----------------------------------

TEST(Json, RoundTripsDoublesBitExactly) {
  Json::Object obj;
  obj["pi"] = Json(3.141592653589793);
  obj["tiny"] = Json(5e-324);
  obj["neg"] = Json(-0.1);
  obj["n"] = Json(12345.0);
  const std::string text = Json(obj).dump();
  const Json back = Json::parse(text);
  EXPECT_EQ(back.at("pi").as_number(), 3.141592653589793);
  EXPECT_EQ(back.at("tiny").as_number(), 5e-324);
  EXPECT_EQ(back.at("neg").as_number(), -0.1);
  EXPECT_EQ(back.at("n").as_number(), 12345.0);
}

TEST(Json, ParsesNestedStructures) {
  const Json v = Json::parse(
      R"({"a": [1, 2, {"b": true, "c": null}], "s": "hi\nthere"})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_TRUE(v.at("a").as_array()[2].at("b").as_bool());
  EXPECT_TRUE(v.at("a").as_array()[2].at("c").is_null());
  EXPECT_EQ(v.at("s").as_string(), "hi\nthere");
}

TEST(Json, DeterministicOutputSortsKeys) {
  Json a;
  a["zebra"] = Json(1.0);
  a["alpha"] = Json(2.0);
  Json b;
  b["alpha"] = Json(2.0);
  b["zebra"] = Json(1.0);
  EXPECT_EQ(a.dump(), b.dump());
  EXPECT_LT(a.dump().find("alpha"), a.dump().find("zebra"));
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{} garbage"), std::runtime_error);
  EXPECT_THROW(Json::parse("nul"), std::runtime_error);
}

TEST(Json, RefusesNonFiniteNumbers) {
  const Json v(std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(v.dump(), std::runtime_error);
}

// --------------------------- fault injection ----------------------------

sensors::SensorTrace tiny_trace() {
  sensors::SensorTrace trace;
  trace.imu_rate_hz = 50.0;
  for (int i = 0; i < 5000; ++i) {
    sensors::ImuSample s;
    s.t = 0.02 * i;
    s.accel_forward = 0.1;
    s.accel_vertical = 9.81;
    trace.imu.push_back(s);
    if (i % 50 == 0) {
      sensors::GpsFix f;
      f.t = s.t;
      f.speed_mps = 10.0;
      trace.gps.push_back(f);
    }
    if (i % 5 == 0) {
      trace.speedometer.push_back({s.t, 10.0});
      trace.canbus_speed.push_back({s.t, 10.0});
      trace.barometer_alt.push_back({s.t, 100.0});
    }
  }
  return trace;
}

TEST(FaultInjection, StandardModesCoverAtLeastFive) {
  EXPECT_GE(standard_fault_modes().size(), 5u);
  for (const FaultKind kind : standard_fault_modes()) {
    EXPECT_NE(fault_name(kind), "none");
    EXPECT_NE(fault_name(kind), "unknown");
  }
}

TEST(FaultInjection, GpsOutageOnlyFlipsValidity) {
  sensors::SensorTrace trace = tiny_trace();
  const auto before = trace.gps;
  apply_fault(trace, make_fault(FaultKind::kGpsOutage));
  ASSERT_EQ(trace.gps.size(), before.size());
  int invalid = 0;
  for (std::size_t i = 0; i < trace.gps.size(); ++i) {
    EXPECT_EQ(trace.gps[i].speed_mps, before[i].speed_mps);
    invalid += trace.gps[i].valid ? 0 : 1;
  }
  EXPECT_GT(invalid, 0);
}

TEST(FaultInjection, TruncationCutsEveryStream) {
  sensors::SensorTrace trace = tiny_trace();
  const double dur = trace.duration_s();
  FaultSpec spec = make_fault(FaultKind::kTruncateTrip);
  apply_fault(trace, spec);
  EXPECT_LT(trace.duration_s(), spec.truncate_keep_frac * dur + 1.0);
  EXPECT_FALSE(trace.imu.empty());
  for (const auto& s : trace.speedometer) {
    EXPECT_LE(s.t, spec.truncate_keep_frac * dur);
  }
}

TEST(FaultInjection, NanSpikesAreDeterministicPerSeed) {
  sensors::SensorTrace a = tiny_trace();
  sensors::SensorTrace b = tiny_trace();
  apply_fault(a, make_fault(FaultKind::kNanSpikes, 7));
  apply_fault(b, make_fault(FaultKind::kNanSpikes, 7));
  ASSERT_EQ(a.imu.size(), b.imu.size());
  bool any_nan = false;
  for (std::size_t i = 0; i < a.imu.size(); ++i) {
    // NaN != NaN, so compare bit patterns via isnan agreement + values.
    EXPECT_EQ(std::isnan(a.imu[i].accel_forward),
              std::isnan(b.imu[i].accel_forward));
    if (!std::isnan(a.imu[i].accel_forward)) {
      EXPECT_EQ(a.imu[i].accel_forward, b.imu[i].accel_forward);
    }
    any_nan = any_nan || std::isnan(a.imu[i].accel_forward) ||
              std::isinf(a.imu[i].gyro_z);
  }
  EXPECT_TRUE(any_nan);
  sensors::SensorTrace c = tiny_trace();
  apply_fault(c, make_fault(FaultKind::kNanSpikes, 8));
  EXPECT_FALSE(trace_is_finite(c));
}

TEST(FaultInjection, SaturationBoundsSignals) {
  sensors::SensorTrace trace = tiny_trace();
  trace.imu[100].accel_forward = 25.0;
  trace.imu[200].gyro_z = -9.0;
  FaultSpec spec = make_fault(FaultKind::kImuSaturation);
  apply_fault(trace, spec);
  for (const auto& s : trace.imu) {
    EXPECT_LE(std::abs(s.accel_forward), spec.accel_full_scale);
    EXPECT_LE(std::abs(s.gyro_z), spec.gyro_full_scale);
  }
}

TEST(FaultInjection, DropoutRemovesImuOnly) {
  sensors::SensorTrace trace = tiny_trace();
  const std::size_t gps_before = trace.gps.size();
  const std::size_t imu_before = trace.imu.size();
  apply_fault(trace, make_fault(FaultKind::kImuDropout));
  EXPECT_LT(trace.imu.size(), imu_before);
  EXPECT_EQ(trace.gps.size(), gps_before);
}

// ------------------------------ sanitization ----------------------------

TEST(Sanitize, DropsExactlyTheNonFiniteSamples) {
  sensors::SensorTrace trace = tiny_trace();
  const std::size_t imu_before = trace.imu.size();
  trace.imu[10].accel_forward = std::numeric_limits<double>::quiet_NaN();
  trace.imu[20].t = std::numeric_limits<double>::infinity();
  trace.speedometer[3].value = -std::numeric_limits<double>::infinity();
  EXPECT_FALSE(trace_is_finite(trace));
  const sensors::SanitizeReport report = sensors::sanitize_trace(trace);
  EXPECT_EQ(report.dropped_imu, 2u);
  EXPECT_EQ(report.dropped_scalar, 1u);
  EXPECT_EQ(report.total(), 3u);
  EXPECT_EQ(trace.imu.size(), imu_before - 2);
  EXPECT_TRUE(trace_is_finite(trace));
  // Idempotent on a clean trace.
  EXPECT_EQ(sensors::sanitize_trace(trace).total(), 0u);
}

// ------------------------------- metrics --------------------------------

TEST(Metrics, PerfectTrackScoresZeroError) {
  // A synthetic "estimate" that reads grades straight off the reference
  // profile must score ~zero on every error metric and full coverage.
  const road::Road road = build_route(RoutePreset::kHillySteep);
  const road::ReferenceProfile ref = road::survey_reference_profile(road);
  vehicle::TripConfig tc;
  tc.seed = 5;
  const vehicle::Trip trip = vehicle::simulate_trip(road, tc);

  core::GradeTrack track;
  track.source = "oracle";
  for (const auto& st : trip.states) {
    track.t.push_back(st.t);
    track.s.push_back(st.s);
    track.grade.push_back(ref.grade_at(st.s));
    track.grade_var.push_back(1e-6);
    track.speed.push_back(st.speed);
  }
  const ScenarioMetrics m = compute_scenario_metrics(
      track, ref, trip, road.length_m(), /*time_domain=*/true);
  EXPECT_LT(m.grade_rmse_deg, 1e-6);
  EXPECT_LT(m.grade_mae_deg, 1e-6);
  EXPECT_NEAR(m.coverage_frac, 1.0, 0.03);
  // The fuel metric is referenced to the trip's exact road grade, while the
  // track above reads the *surveyed* profile — they differ by survey error,
  // so the fuel error is small but not zero.
  EXPECT_LT(std::abs(m.fuel_error_rel), 0.02);
  EXPECT_GT(m.n_samples, 100.0);

  // Swapping in the exact trip grades makes the fuel error vanish.
  core::GradeTrack truth = track;
  for (std::size_t i = 0; i < trip.states.size(); ++i) {
    truth.grade[i] = trip.states[i].grade;
  }
  EXPECT_NEAR(vsp_fuel_error_rel(truth, trip, /*time_domain=*/true), 0.0,
              1e-12);
}

TEST(Metrics, GoldenRoundTripAndToleranceBands) {
  ScenarioMetrics m;
  m.grade_rmse_deg = 0.21;
  m.grade_mae_deg = 0.15;
  m.grade_median_abs_deg = 0.12;
  m.grade_mre = 0.2;
  m.coverage_frac = 0.98;
  m.fuel_error_rel = -0.01;
  m.n_samples = 1800.0;
  const Json doc = golden_to_json("demo", m, default_tolerances(m));
  const Json parsed = Json::parse(doc.dump());
  EXPECT_TRUE(
      ScenarioMetrics::from_json(parsed.at("metrics")).bit_identical(m));
  EXPECT_TRUE(compare_to_golden(m, parsed).ok);

  ScenarioMetrics worse = m;
  worse.grade_rmse_deg = m.grade_rmse_deg + 1.0;  // way outside the band
  const GoldenComparison cmp = compare_to_golden(worse, parsed);
  EXPECT_FALSE(cmp.ok);
  ASSERT_EQ(cmp.failures.size(), 1u);
  EXPECT_NE(cmp.failures[0].find("grade_rmse_deg"), std::string::npos);
}

// ------------------------------- matrix ---------------------------------

TEST(ScenarioMatrix, HasAtLeastTenUniquelyNamedScenarios) {
  const auto matrix = scenario_matrix();
  EXPECT_GE(matrix.size(), 10u);
  std::vector<std::string> names;
  bool has_multi_trip = false;
  for (const auto& spec : matrix) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_EQ(std::count(names.begin(), names.end(), spec.name), 0)
        << "duplicate scenario name " << spec.name;
    names.push_back(spec.name);
    has_multi_trip = has_multi_trip || spec.n_trips > 1;
  }
  EXPECT_TRUE(has_multi_trip) << "matrix must cover multi-trip fusion";
}

TEST(ScenarioMatrix, WorldBuildingIsDeterministic) {
  const auto matrix = scenario_matrix();
  const ScenarioSpec& spec = matrix.front();
  const ScenarioWorld a = build_world(spec);
  const ScenarioWorld b = build_world(spec);
  ASSERT_EQ(a.traces.size(), b.traces.size());
  ASSERT_EQ(a.traces[0].imu.size(), b.traces[0].imu.size());
  EXPECT_EQ(a.traces[0].imu.back().accel_forward,
            b.traces[0].imu.back().accel_forward);
  EXPECT_EQ(a.trips[0].states.back().s, b.trips[0].states.back().s);
}

}  // namespace
}  // namespace rge::testing
