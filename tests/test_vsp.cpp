// Unit tests for the VSP fuel-consumption model (Eq. 7, Table II).
#include "emissions/vsp.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"

namespace rge::emissions {
namespace {

using math::deg2rad;

TEST(Vsp, Validation) {
  EXPECT_THROW(fuel_rate_gal_per_h(-1.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(fuel_used_gal(10.0, 0.0, 0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(fuel_per_km_gal(0.0, 0.0), std::invalid_argument);
}

TEST(Vsp, CruiseBurnIsRealistic) {
  // A 1.479 t sedan at 40 km/h on flat ground: roughly 0.4-1.2 gal/h
  // (25-60 mpg at that speed).
  const double rate = fuel_rate_gal_per_h(40.0 / 3.6, 0.0, 0.0);
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 1.2);
}

TEST(Vsp, UphillCostsMoreDownhillHitsIdleFloor) {
  const double v = 40.0 / 3.6;
  const double flat = fuel_rate_gal_per_h(v, 0.0, 0.0);
  const double up = fuel_rate_gal_per_h(v, 0.0, deg2rad(4.0));
  const double down = fuel_rate_gal_per_h(v, 0.0, deg2rad(-4.0));
  EXPECT_GT(up, 1.5 * flat);  // paper: 1.5-2x for uphill [3]
  EXPECT_LT(up, 4.0 * flat);
  VspParams p;
  EXPECT_DOUBLE_EQ(down, p.idle_floor_gal_per_h);
}

TEST(Vsp, GradeAsymmetryRaisesRoundTripAverage) {
  // The idle floor makes (up + down)/2 > flat — the mechanism behind the
  // paper's +33.4% network-level increase.
  const double v = 40.0 / 3.6;
  const double flat = fuel_rate_gal_per_h(v, 0.0, 0.0);
  const double up = fuel_rate_gal_per_h(v, 0.0, deg2rad(3.0));
  const double down = fuel_rate_gal_per_h(v, 0.0, deg2rad(-3.0));
  EXPECT_GT(0.5 * (up + down), flat);
}

TEST(Vsp, AccelerationCostsFuel) {
  const double v = 12.0;
  EXPECT_GT(fuel_rate_gal_per_h(v, 1.5, 0.0),
            fuel_rate_gal_per_h(v, 0.0, 0.0));
  // Hard braking saturates at the idle floor.
  VspParams p;
  EXPECT_DOUBLE_EQ(fuel_rate_gal_per_h(v, -4.0, 0.0),
                   p.idle_floor_gal_per_h);
}

TEST(Vsp, FasterCruiseBurnsMorePerHour) {
  EXPECT_GT(fuel_rate_gal_per_h(30.0, 0.0, 0.0),
            fuel_rate_gal_per_h(15.0, 0.0, 0.0));
}

TEST(Vsp, FuelUsedIntegratesRate) {
  const double rate = fuel_rate_gal_per_h(12.0, 0.0, deg2rad(2.0));
  EXPECT_NEAR(fuel_used_gal(12.0, 0.0, deg2rad(2.0), 3600.0), rate, 1e-12);
  EXPECT_NEAR(fuel_used_gal(12.0, 0.0, deg2rad(2.0), 60.0), rate / 60.0,
              1e-12);
  EXPECT_DOUBLE_EQ(fuel_used_gal(12.0, 0.0, 0.0, 0.0), 0.0);
}

TEST(Vsp, FuelPerKmConsistent) {
  const double v = 50.0 / 3.6;
  const double per_km = fuel_per_km_gal(v, 0.0);
  const double per_h = fuel_rate_gal_per_h(v, 0.0, 0.0);
  EXPECT_NEAR(per_km * 50.0, per_h, 1e-12);
}

TEST(Vsp, HeavierVehicleBurnsMore) {
  VspParams heavy;
  heavy.mass_t = 2.5;
  const double v = 12.0;
  EXPECT_GT(fuel_rate_gal_per_h(v, 0.0, deg2rad(2.0), heavy),
            fuel_rate_gal_per_h(v, 0.0, deg2rad(2.0)));
}

TEST(Vsp, FreyGradeSensitivity) {
  // Frey et al. [2]: ~40% more fuel going from 0 to 5 degrees. Our VSP
  // instance is more grade-sensitive (b fitted with efficiency folded in),
  // so check the direction and a generous band.
  const double v = 40.0 / 3.6;
  const double flat = fuel_rate_gal_per_h(v, 0.0, 0.0);
  const double five = fuel_rate_gal_per_h(v, 0.0, deg2rad(5.0));
  EXPECT_GT(five / flat, 1.4);
  EXPECT_LT(five / flat, 5.0);
}

// Parameterized: the rate is monotone in grade above the idle floor.
class VspGradeMonotone : public ::testing::TestWithParam<double> {};

TEST_P(VspGradeMonotone, MonotoneInGrade) {
  const double v = GetParam();
  double prev = 0.0;
  bool first = true;
  for (double g_deg = -2.0; g_deg <= 6.0; g_deg += 1.0) {
    const double rate = fuel_rate_gal_per_h(v, 0.0, deg2rad(g_deg));
    if (!first) {
      EXPECT_GE(rate, prev - 1e-12);
    }
    prev = rate;
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Speeds, VspGradeMonotone,
                         ::testing::Values(5.0, 11.1, 16.7, 25.0));

}  // namespace
}  // namespace rge::emissions
