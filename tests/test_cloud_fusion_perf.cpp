// Perf-tier guards for the city-scale serving layer (ctest -L perf):
//
//   * streaming a 200-vehicle fleet through FusionAccumulator (add one
//     track, re-snapshot) must beat re-running fuse_tracks_distance from
//     scratch on every upload by >= 5x;
//   * indexed match_track on a long route (global re-acquisition per
//     chunked upload) must beat the brute-force reference by >= 10x;
//   * after all uploads, the accumulator snapshot must still be
//     bit-identical to a full-fleet fuse_tracks_distance.
//
// The measured numbers are written to BENCH_cloud_fusion.json (override
// the path with RGE_BENCH_CLOUD_FUSION_OUT) as the repo's perf-trajectory
// artifact for this workload.
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/road_matcher.hpp"
#include "core/track_fusion.hpp"
#include "math/angles.hpp"
#include "math/geodesy.hpp"
#include "road/road.hpp"
#include "sensors/trace.hpp"
#include "testing/json.hpp"

namespace rge::core {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(const Clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// ~40 km winding route: long enough that a brute-force global match
/// scans thousands of segments per query.
road::Road long_route() {
  road::RoadBuilder b("perf-long-route");
  double grade = 0.0;
  for (int i = 0; i < 40; ++i) {
    const double next = math::deg2rad((i % 7) - 3.0);
    const double turn = math::deg2rad((i % 2 == 0) ? 35.0 : -35.0);
    b.add_section(road::SectionSpec{1000.0, grade, next, turn, 1});
    grade = next;
  }
  return b.build();
}

GradeTrack synth_track(std::uint32_t id, double s0, double s1,
                       std::size_t n) {
  GradeTrack tr;
  tr.source = "fleet-" + std::to_string(id);
  std::mt19937 rng(77u + id);
  std::uniform_real_distribution<double> jitter(0.0, 1.0);
  tr.t.resize(n);
  tr.s.resize(n);
  tr.grade.resize(n);
  tr.grade_var.resize(n);
  tr.speed.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(n - 1);
    tr.s[i] = s0 + f * (s1 - s0);
    tr.t[i] = tr.s[i] / 14.0;
    tr.grade[i] = 0.05 * std::sin(0.0008 * tr.s[i]) +
                  0.002 * std::sin(0.03 * tr.s[i] + id);
    tr.grade_var[i] = 2e-5 + 1e-5 * jitter(rng);
    tr.speed[i] = 13.0 + 3.0 * std::sin(0.0005 * tr.s[i] + 0.1 * id);
  }
  return tr;
}

TEST(CloudFusionPerf, FleetScaleBudgets) {
  constexpr std::size_t kVehicles = 200;
  const road::Road route = long_route();
  const double length = route.length_m();

  // ---- fleet of gradient tracks over (almost) the whole route --------
  std::vector<GradeTrack> fleet;
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> head(0.0, 0.01 * length);
  std::uniform_real_distribution<double> tail(0.98 * length, length);
  for (std::size_t v = 0; v < kVehicles; ++v) {
    fleet.push_back(synth_track(static_cast<std::uint32_t>(v), head(rng),
                                tail(rng), 1500));
  }

  FusionConfig cfg;
  cfg.distance_step_m = 10.0;

  // Baseline: every upload re-fuses the fleet seen so far from scratch.
  const auto t_refuse = Clock::now();
  for (std::size_t v = 0; v < kVehicles; ++v) {
    const std::vector<GradeTrack> seen(fleet.begin(),
                                       fleet.begin() + v + 1);
    const GradeTrack fused = fuse_tracks_distance(seen, cfg);
    ASSERT_FALSE(fused.s.empty());
  }
  const double refuse_ms = ms_since(t_refuse);

  // Streaming: one accumulator on the full-fleet grid; each upload adds
  // its track and re-snapshots the serving map.
  const FusionGrid grid = make_overlap_grid(fleet, cfg);
  FusionAccumulator acc(grid, cfg);
  const auto t_stream = Clock::now();
  for (std::size_t v = 0; v < kVehicles; ++v) {
    acc.add_track(fleet[v]);
    const GradeTrack snap = acc.snapshot();
    ASSERT_FALSE(snap.s.empty());
  }
  const double stream_ms = ms_since(t_stream);

  // Equivalence after the full stream: still exactly fuse_tracks_distance.
  const GradeTrack full = fuse_tracks_distance(fleet, cfg);
  const GradeTrack snap = acc.snapshot();
  ASSERT_EQ(snap.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    ASSERT_EQ(snap.grade[i], full.grade[i]) << i;
    ASSERT_EQ(snap.grade_var[i], full.grade_var[i]) << i;
    ASSERT_EQ(snap.speed[i], full.speed[i]) << i;
    ASSERT_EQ(snap.t[i], full.t[i]) << i;
    ASSERT_EQ(snap.s[i], full.s[i]) << i;
  }

  const double fusion_speedup = refuse_ms / stream_ms;
  EXPECT_GE(fusion_speedup, 5.0)
      << "accumulator " << stream_ms << " ms vs re-fuse " << refuse_ms
      << " ms";

  // ---- matching: chunked uploads on the long route -------------------
  // Fleet phones upload GPS in short chunks; every chunk re-acquires
  // globally (the step the index accelerates) then window-tracks.
  const RoadMatcher matcher(route);
  const math::LocalTangentPlane ltp(route.anchor());
  constexpr std::size_t kChunks = 1500;
  constexpr std::size_t kFixesPerChunk = 12;
  std::vector<std::vector<sensors::GpsFix>> chunks;
  std::uniform_real_distribution<double> start_s(0.0, length - 400.0);
  std::uniform_real_distribution<double> lateral(-6.0, 6.0);
  for (std::size_t c = 0; c < kChunks; ++c) {
    std::vector<sensors::GpsFix> chunk;
    double s = start_s(rng);
    for (std::size_t i = 0; i < kFixesPerChunk; ++i) {
      const auto pos = route.position_at(s);
      const double h = route.heading_at(s);
      math::Enu p = pos;
      const double l = lateral(rng);
      p.east_m += -std::sin(h) * l;
      p.north_m += std::cos(h) * l;
      sensors::GpsFix fix;
      fix.t = static_cast<double>(i);
      fix.position = ltp.to_geodetic(p);
      chunk.push_back(fix);
      s += 15.0;
    }
    chunks.push_back(std::move(chunk));
  }

  auto run_matching = [&](RoadMatcher::Mode mode) {
    double checksum = 0.0;
    for (const auto& chunk : chunks) {
      const auto matched = matcher.match_track(chunk, mode);
      checksum += matched.back().s_m;
    }
    return checksum;
  };
  // Warm caches, and assert parity while at it.
  const double warm_idx = run_matching(RoadMatcher::Mode::kIndexed);
  const double warm_brute = run_matching(RoadMatcher::Mode::kBruteForce);
  ASSERT_EQ(warm_idx, warm_brute);

  const auto t_brute = Clock::now();
  const double sum_brute = run_matching(RoadMatcher::Mode::kBruteForce);
  const double brute_ms = ms_since(t_brute);
  const auto t_idx = Clock::now();
  const double sum_idx = run_matching(RoadMatcher::Mode::kIndexed);
  const double indexed_ms = ms_since(t_idx);
  ASSERT_EQ(sum_idx, sum_brute);

  const double match_speedup = brute_ms / indexed_ms;
  EXPECT_GE(match_speedup, 10.0)
      << "indexed " << indexed_ms << " ms vs brute " << brute_ms << " ms";

  // ---- perf-trajectory artifact --------------------------------------
  testing::Json::Object doc;
  doc["workload"] = testing::Json::Object{
      {"n_vehicles", kVehicles},
      {"samples_per_track", std::size_t{1500}},
      {"route_length_m", length},
      {"grid_cells", grid.n},
      {"grid_step_m", cfg.distance_step_m},
      {"match_chunks", kChunks},
      {"fixes_per_chunk", kFixesPerChunk},
      {"matcher_segments", matcher.vertex_count() - 1},
  };
  doc["fusion"] = testing::Json::Object{
      {"refuse_from_scratch_ms", refuse_ms},
      {"accumulator_stream_ms", stream_ms},
      {"speedup", fusion_speedup},
      {"budget_min_speedup", 5.0},
  };
  doc["matching"] = testing::Json::Object{
      {"brute_force_ms", brute_ms},
      {"indexed_ms", indexed_ms},
      {"speedup", match_speedup},
      {"budget_min_speedup", 10.0},
  };
  const char* out = std::getenv("RGE_BENCH_CLOUD_FUSION_OUT");
  testing::write_json_file(testing::Json(doc),
                           out != nullptr ? out
                                          : "BENCH_cloud_fusion.json");
}

}  // namespace
}  // namespace rge::core
