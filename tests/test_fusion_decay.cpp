// Tests for FusionAccumulator's time-decayed eviction of stale
// contributions (FusionConfig::decay_tau_s).
//
// Contracts pinned here:
//  * decay OFF (the default) is bit-identical to the pre-decay
//    accumulator: snapshot() == fuse_tracks_distance on synthetic fleets
//    and on every scenario of the regression matrix;
//  * decay ON down-weights stale epochs: a cell repaved by a much newer
//    contribution converges to the new value;
//  * decayed sums are order-independent bit-for-bit (the decay factor is
//    a pure function of contribution sample times, and IEEE addition of
//    the two aligned contributions commutes);
//  * MapService epochs with decay enabled stay bit-identical across
//    1/2/8-thread pools x 1/4/16 shards and across rebalance();
//  * merge() of mismatched decay_tau_s throws, naming the field;
//  * eviction is observable via the fusion.decayed_weight counter.
#include "core/track_fusion.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "road/network.hpp"
#include "runtime/thread_pool.hpp"
#include "service/map_service.hpp"
#include "testing/fault_injection.hpp"
#include "testing/scenario.hpp"

namespace rge::core {
namespace {

/// Deterministic synthetic gradient track covering s in [s0, s1]
/// (test_fusion_accumulator idiom), with a controllable time offset so
/// tests can stage distinct upload epochs.
GradeTrack synth_track(std::uint32_t id, double s0, double s1,
                       std::size_t n, double t0 = 0.0) {
  GradeTrack tr;
  tr.source = "synth-" + std::to_string(id);
  std::mt19937 rng(1234u + id);
  std::uniform_real_distribution<double> jitter(0.0, 1.0);
  tr.t.resize(n);
  tr.s.resize(n);
  tr.grade.resize(n);
  tr.grade_var.resize(n);
  tr.speed.resize(n);
  const double span = s1 - s0;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(n - 1);
    tr.s[i] = s0 + f * span;
    tr.t[i] = t0 + 40.0 * f * span / 15.0 + 0.01 * static_cast<double>(id);
    tr.grade[i] = 0.04 * std::sin(0.002 * tr.s[i]) +
                  0.003 * std::sin(0.11 * tr.s[i] + id);
    tr.grade_var[i] = 1e-5 + 1e-5 * jitter(rng);
    tr.speed[i] = 12.0 + 4.0 * std::sin(0.001 * tr.s[i] + 0.3 * id);
  }
  tr.validate();
  return tr;
}

/// Constant-grade track over [0, 1000] m at a fixed epoch.
GradeTrack flat_track(std::uint32_t id, double grade, double t0) {
  GradeTrack tr = synth_track(id, 0.0, 1000.0, 200, t0);
  for (std::size_t i = 0; i < tr.size(); ++i) {
    tr.grade[i] = grade;
    tr.grade_var[i] = 1e-5;
    tr.speed[i] = 13.0;
  }
  return tr;
}

std::vector<GradeTrack> synth_fleet(std::size_t n_tracks, double length_m) {
  std::vector<GradeTrack> tracks;
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> head(0.0, 0.02 * length_m);
  std::uniform_real_distribution<double> tail(0.95 * length_m, length_m);
  for (std::size_t v = 0; v < n_tracks; ++v) {
    const double s0 = head(rng);
    const double s1 = tail(rng);
    tracks.push_back(synth_track(static_cast<std::uint32_t>(v), s0, s1,
                                 400 + 17 * (v % 9)));
  }
  return tracks;
}

void expect_bit_identical(const GradeTrack& a, const GradeTrack& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.t[i], b.t[i]) << i;
    EXPECT_EQ(a.s[i], b.s[i]) << i;
    EXPECT_EQ(a.grade[i], b.grade[i]) << i;
    EXPECT_EQ(a.grade_var[i], b.grade_var[i]) << i;
    EXPECT_EQ(a.speed[i], b.speed[i]) << i;
  }
}

// ---- decay off == pre-decay accumulator, bit for bit -------------------

TEST(FusionDecay, OffIsBitIdenticalToFuseDistanceOnSynthFleet) {
  const auto tracks = synth_fleet(12, 8000.0);
  FusionConfig cfg;
  cfg.decay_tau_s = 0.0;  // explicit: the default, the disabled path
  FusionAccumulator acc(make_overlap_grid(tracks, cfg), cfg);
  acc.add_tracks(tracks);
  expect_bit_identical(acc.snapshot(), fuse_tracks_distance(tracks, cfg));
}

TEST(FusionDecay, OffIsBitIdenticalOnEveryMatrixScenario) {
  // Real pipeline tracks (EKF variances, degraded GPS, hostile worlds):
  // with decay disabled the new code path must be invisible on all of
  // them.
  const testing::FaultSpec no_fault;
  std::size_t checked = 0;
  for (const auto& spec : testing::scenario_matrix()) {
    const auto world = testing::build_world(spec);
    const auto run = testing::run_scenario(spec, world, no_fault, 1);
    if (run.rejected || run.tracks.size() < 2) continue;
    try {
      const GradeTrack dist = fuse_tracks_distance(run.tracks);
      FusionAccumulator acc(make_overlap_grid(run.tracks, FusionConfig{}),
                            FusionConfig{});
      acc.add_tracks(run.tracks);
      expect_bit_identical(acc.snapshot(), dist);
      ++checked;
    } catch (const std::invalid_argument&) {
      // Some per-source track sets may not overlap in distance.
    }
  }
  EXPECT_GE(checked, 10u);
}

// ---- decay semantics ----------------------------------------------------

TEST(FusionDecay, StaleEpochIsDownWeighted) {
  // Epoch A reports 0 % grade; 10000 s later epoch B repaves at 5 %.
  const GradeTrack old_epoch = flat_track(1, 0.0, 0.0);
  const GradeTrack new_epoch = flat_track(2, 0.05, 10000.0);

  FusionConfig no_decay;
  FusionAccumulator plain(make_overlap_grid({old_epoch, new_epoch}, no_decay),
                          no_decay);
  plain.add_track(old_epoch);
  plain.add_track(new_epoch);

  FusionConfig decay;
  decay.decay_tau_s = 600.0;
  FusionAccumulator decayed(
      make_overlap_grid({old_epoch, new_epoch}, decay), decay);
  decayed.add_track(old_epoch);
  decayed.add_track(new_epoch);

  const GradeTrack fused_plain = plain.snapshot();
  const GradeTrack fused_decay = decayed.snapshot();
  ASSERT_EQ(fused_plain.size(), fused_decay.size());
  for (std::size_t i = 0; i < fused_decay.size(); ++i) {
    // Without decay both epochs weigh equally: fused sits midway. With
    // decay the stale epoch is exp(-10000/600) ~ 0 of the new one.
    EXPECT_NEAR(fused_plain.grade[i], 0.025, 1e-3) << i;
    EXPECT_NEAR(fused_decay.grade[i], 0.05, 1e-4) << i;
    // The decayed mean traversal time converges to the new epoch's too
    // (decayed_count_ divisor), and must stay finite/sane.
    EXPECT_GT(fused_decay.t[i], 9000.0) << i;
  }
}

TEST(FusionDecay, DecayedSumsAreOrderIndependentBitwise) {
  // The decay factor is a pure function of the two contributions' sample
  // times, and aligning both to max(ref_a, ref_b) makes the final sums an
  // IEEE-commutative addition — so upload order cannot matter, bitwise.
  const GradeTrack a = flat_track(1, 0.01, 0.0);
  const GradeTrack b = flat_track(2, 0.03, 500.0);
  FusionConfig cfg;
  cfg.decay_tau_s = 300.0;
  const FusionGrid grid = make_overlap_grid({a, b}, cfg);

  FusionAccumulator ab(grid, cfg);
  ab.add_track(a);
  ab.add_track(b);
  FusionAccumulator ba(grid, cfg);
  ba.add_track(b);
  ba.add_track(a);
  expect_bit_identical(ab.snapshot(), ba.snapshot());
}

TEST(FusionDecay, SingleEpochRatiosUnchanged) {
  // Scaling every contribution of a cell by (nearly) the same factor
  // cancels in the snapshot ratios: a fleet uploaded within one short
  // epoch fuses to (almost) the same grades with decay on or off.
  const auto tracks = synth_fleet(6, 3000.0);
  FusionConfig off;
  FusionAccumulator plain(make_overlap_grid(tracks, off), off);
  plain.add_tracks(tracks);
  FusionConfig on;
  on.decay_tau_s = 1e7;  // tau >> epoch spread: decay factors ~ 1
  FusionAccumulator decayed(make_overlap_grid(tracks, on), on);
  decayed.add_tracks(tracks);
  const GradeTrack fp = plain.snapshot();
  const GradeTrack fd = decayed.snapshot();
  ASSERT_EQ(fp.size(), fd.size());
  for (std::size_t i = 0; i < fp.size(); ++i) {
    EXPECT_NEAR(fp.grade[i], fd.grade[i], 1e-6) << i;
    EXPECT_NEAR(fp.speed[i], fd.speed[i], 1e-3) << i;
  }
}

TEST(FusionDecay, MergeNamesMismatchedDecayTau) {
  const FusionGrid grid{0.0, 100.0, 5.0, 21};
  FusionConfig a;
  a.decay_tau_s = 100.0;
  FusionConfig b;
  b.decay_tau_s = 200.0;
  FusionAccumulator lhs(grid, a);
  FusionAccumulator rhs(grid, b);
  try {
    lhs.merge(rhs);
    FAIL() << "merge of mismatched decay_tau_s must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("decay_tau_s"), std::string::npos)
        << e.what();
  }
}

#if RGE_OBS_ENABLED
TEST(FusionDecay, EvictionIsCountedWhenObservabilityOn) {
  obs::reset_all();
  obs::set_enabled(true);
  {
    FusionConfig cfg;
    cfg.decay_tau_s = 600.0;
    const GradeTrack old_epoch = flat_track(1, 0.0, 0.0);
    const GradeTrack new_epoch = flat_track(2, 0.05, 10000.0);
    FusionAccumulator acc(make_overlap_grid({old_epoch, new_epoch}, cfg),
                          cfg);
    acc.add_track(old_epoch);
    acc.add_track(new_epoch);  // repave: the old epoch's weight evicts
  }
  const auto snap = obs::Registry::global().snapshot();
  obs::set_enabled(false);
  const auto it = snap.counters.find("fusion.decayed_weight");
  ASSERT_NE(it, snap.counters.end());
  EXPECT_GT(it->second, 0);
}
#endif

// ---- map service: decayed epochs stay layout-deterministic -------------

service::MapServiceConfig decayed_config(std::size_t n_shards) {
  service::MapServiceConfig cfg;
  cfg.n_shards = n_shards;
  cfg.tile_length_m = 500.0;
  cfg.fusion.distance_step_m = 5.0;
  cfg.fusion.decay_tau_s = 900.0;
  return cfg;
}

/// Staggered-epoch fleet: each upload's timestamps sit in its own epoch
/// so the decay path actually re-weights across uploads.
std::vector<service::TrackUpload> epoch_fleet(const road::RoadNetwork& net,
                                              std::size_t n_uploads) {
  std::vector<service::TrackUpload> fleet;
  std::mt19937 rng(41);
  std::uniform_int_distribution<std::size_t> pick(0, net.size() - 1);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (std::size_t v = 0; v < n_uploads; ++v) {
    const auto r = static_cast<service::RoadId>(pick(rng));
    const road::Road& road = net.roads()[r].road;
    const double len = road.length_m();
    const double s0 = u(rng) * std::max(0.0, len - 200.0);
    const double s1 = std::min(len, s0 + 200.0 + u(rng) * (len - s0 - 200.0));
    service::TrackUpload up;
    up.road = r;
    GradeTrack tr = synth_track(static_cast<std::uint32_t>(v), s0, s1,
                                std::max<std::size_t>(
                                    32, static_cast<std::size_t>((s1 - s0) /
                                                                 4.0)),
                                /*t0=*/600.0 * static_cast<double>(v));
    up.track = std::move(tr);
    fleet.push_back(std::move(up));
  }
  return fleet;
}

void expect_snapshots_identical(const service::ServiceSnapshot& a,
                                const service::ServiceSnapshot& b) {
  ASSERT_EQ(a.roads.size(), b.roads.size());
  for (std::size_t r = 0; r < a.roads.size(); ++r) {
    ASSERT_EQ(a.roads[r].cells, b.roads[r].cells) << "road " << r;
    ASSERT_EQ(a.roads[r].coverage, b.roads[r].coverage) << "road " << r;
    ASSERT_EQ(a.roads[r].track.grade, b.roads[r].track.grade) << "road " << r;
    ASSERT_EQ(a.roads[r].track.grade_var, b.roads[r].track.grade_var)
        << "road " << r;
    ASSERT_EQ(a.roads[r].track.speed, b.roads[r].track.speed) << "road " << r;
    ASSERT_EQ(a.roads[r].track.t, b.roads[r].track.t) << "road " << r;
    ASSERT_EQ(a.roads[r].track.s, b.roads[r].track.s) << "road " << r;
  }
}

TEST(FusionDecay, MapServiceBitIdenticalAcrossLayoutsWithDecay) {
  const road::RoadNetwork net = road::make_city_network(77, 12.0);
  const auto fleet = epoch_fleet(net, 90);

  service::MapService ref(net, decayed_config(1));
  ref.ingest(fleet);
  ref.publish();
  const auto want = ref.snapshot();
  ASSERT_GT(want->epoch, 0u);

  for (const std::size_t n_shards : {1u, 4u, 16u}) {
    for (const std::size_t n_threads : {1u, 2u, 8u}) {
      runtime::ThreadPool pool(n_threads);
      service::MapService svc(net, decayed_config(n_shards));
      const std::size_t batch = 31;
      for (std::size_t i = 0; i < fleet.size(); i += batch) {
        const std::vector<service::TrackUpload> chunk(
            fleet.begin() + static_cast<std::ptrdiff_t>(i),
            fleet.begin() + static_cast<std::ptrdiff_t>(
                                std::min(fleet.size(), i + batch)));
        svc.ingest(chunk, &pool);
      }
      svc.publish(&pool);
      expect_snapshots_identical(*svc.snapshot(), *want);
    }
  }
}

TEST(FusionDecay, RebalancePreservesDecayedEpochExactly) {
  const road::RoadNetwork net = road::make_city_network(77, 12.0);
  const auto fleet = epoch_fleet(net, 60);
  service::MapService svc(net, decayed_config(4));
  svc.ingest(fleet);
  svc.publish();
  const auto before = svc.snapshot();
  for (const std::size_t new_shards : {1u, 8u, 3u}) {
    svc.rebalance(new_shards);
    svc.publish();
    expect_snapshots_identical(*svc.snapshot(), *before);
  }
}

}  // namespace
}  // namespace rge::core
