// Integration tests for the end-to-end gradient estimation pipeline (OPS).
#include "core/pipeline.hpp"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "math/angles.hpp"
#include "road/network.hpp"
#include "sensors/smartphone.hpp"
#include "vehicle/trip.hpp"

namespace rge::core {
namespace {

using math::deg2rad;

struct Scenario {
  road::Road road;
  vehicle::Trip trip;
  sensors::SensorTrace trace;
};

Scenario table3_scenario(std::uint64_t seed = 21,
                         double lane_changes_per_km = 5.0) {
  Scenario sc{road::make_table3_route(2019), {}, {}};
  vehicle::TripConfig tc;
  tc.seed = seed;
  tc.lane_changes_per_km = lane_changes_per_km;
  sc.trip = vehicle::simulate_trip(sc.road, tc);
  sensors::SmartphoneConfig pc;
  pc.seed = seed + 7;
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       vehicle::VehicleParams{}, pc);
  return sc;
}

TEST(Pipeline, Validation) {
  EXPECT_THROW(
      estimate_gradient(sensors::SensorTrace{}, vehicle::VehicleParams{}),
      std::invalid_argument);
  const Scenario sc = table3_scenario();
  PipelineConfig cfg;
  cfg.use_gps = cfg.use_speedometer = cfg.use_canbus = cfg.use_imu = false;
  EXPECT_THROW(estimate_gradient(sc.trace, vehicle::VehicleParams{}, cfg),
               std::invalid_argument);
}

TEST(Pipeline, ProducesFourTracksAndFusedOutput) {
  const Scenario sc = table3_scenario();
  const PipelineResult res =
      estimate_gradient(sc.trace, vehicle::VehicleParams{});
  EXPECT_EQ(res.tracks.size(), 4u);
  EXPECT_EQ(res.fused.source, "fused");
  EXPECT_FALSE(res.fused.t.empty());
  EXPECT_EQ(res.det_t.size(), res.det_steer_smoothed.size());
  EXPECT_EQ(res.det_t.size(), res.det_speed.size());
}

TEST(Pipeline, AccuracyOnTable3Route) {
  const Scenario sc = table3_scenario();
  const PipelineResult res =
      estimate_gradient(sc.trace, vehicle::VehicleParams{});
  const TrackErrorStats stats = evaluate_track(res.fused, sc.trip);
  // System-level accuracy envelope (paper-scale): median well under half a
  // degree, MRE below 25%.
  EXPECT_LT(stats.median_abs_deg, 0.45);
  EXPECT_LT(stats.mre, 0.25);
}

TEST(Pipeline, FusionBeatsAverageSingleTrack) {
  const Scenario sc = table3_scenario(33);
  const PipelineResult res =
      estimate_gradient(sc.trace, vehicle::VehicleParams{});
  const double fused_med =
      evaluate_track(res.fused, sc.trip).median_abs_deg;
  double mean_single = 0.0;
  for (const auto& tr : res.tracks) {
    mean_single += evaluate_track(tr, sc.trip).median_abs_deg;
  }
  mean_single /= static_cast<double>(res.tracks.size());
  EXPECT_LT(fused_med, mean_single);
}

TEST(Pipeline, DetectsLaneChangesWithGoodPrecisionRecall) {
  // Aggregate over several drives for a stable count.
  std::size_t true_total = 0;
  std::size_t detected_total = 0;
  std::size_t matched = 0;
  for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    const Scenario sc = table3_scenario(seed);
    const PipelineResult res =
        estimate_gradient(sc.trace, vehicle::VehicleParams{});
    true_total += sc.trip.lane_changes.size();
    detected_total += res.lane_changes.size();
    for (const auto& truth : sc.trip.lane_changes) {
      for (const auto& det : res.lane_changes) {
        const bool overlap =
            det.t_start < truth.end_t + 1.0 && det.t_end > truth.start_t - 1.0;
        const bool same_type =
            (truth.direction == vehicle::LaneChangeDirection::kLeft) ==
            (det.type == LaneChangeType::kLeft);
        if (overlap && same_type) {
          ++matched;
          break;
        }
      }
    }
  }
  ASSERT_GT(true_total, 3u);
  // Recall and precision both >= 75% across drives.
  EXPECT_GE(static_cast<double>(matched) / true_total, 0.75);
  EXPECT_GE(static_cast<double>(matched) / std::max<std::size_t>(
                                               1, detected_total),
            0.75);
}

TEST(Pipeline, LaneChangeAdjustmentHelpsDuringManeuvers) {
  // Compare fused error inside lane-change windows with and without the
  // lane-change effect elimination (Eq. 2 velocity adjustment + specific
  // force projection), aggregated over several drives. The effect scales
  // with the road's cross slope: on a strongly superelevated road (6%)
  // the unhandled crown-gravity leak visibly corrupts the gradient, and
  // the elimination must recover it. (At the standard 2% drainage crown
  // the two variants are statistically indistinguishable in our physics —
  // see bench_ablations / EXPERIMENTS.md.)
  constexpr double kCrown = 0.06;
  double err_with = 0.0;
  double err_without = 0.0;
  std::size_t n = 0;
  for (std::uint64_t seed : {21u, 22u, 23u, 24u, 25u, 26u}) {
    Scenario sc = table3_scenario(seed, 6.0);
    if (sc.trip.lane_changes.empty()) continue;
    sensors::SmartphoneConfig pc;
    pc.seed = seed + 7;
    pc.road_crown = kCrown;
    sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                         vehicle::VehicleParams{}, pc);
    PipelineConfig with;
    with.assumed_road_crown = kCrown;
    PipelineConfig without;
    without.enable_lane_change_adjustment = false;
    const auto res_with =
        estimate_gradient(sc.trace, vehicle::VehicleParams{}, with);
    const auto res_without =
        estimate_gradient(sc.trace, vehicle::VehicleParams{}, without);
    const auto truth_w = truth_grade_at_times(sc.trip, res_with.fused.t);
    const auto truth_wo = truth_grade_at_times(sc.trip, res_without.fused.t);
    for (const auto& lc : sc.trip.lane_changes) {
      for (std::size_t i = 0; i < res_with.fused.t.size(); ++i) {
        const double t = res_with.fused.t[i];
        if (t >= lc.start_t && t <= lc.end_t + 3.0) {
          err_with += std::abs(res_with.fused.grade[i] - truth_w[i]);
          err_without += std::abs(res_without.fused.grade[i] - truth_wo[i]);
          ++n;
        }
      }
    }
  }
  ASSERT_GT(n, 50u);
  EXPECT_LT(err_with, err_without);
}

TEST(Pipeline, SmoothingCanBeDisabled) {
  const Scenario sc = table3_scenario();
  PipelineConfig cfg;
  cfg.smoothing_window_s = 0.0;
  const PipelineResult res =
      estimate_gradient(sc.trace, vehicle::VehicleParams{}, cfg);
  EXPECT_FALSE(res.fused.t.empty());
  // Raw profile is rougher than the smoothed one.
  const PipelineResult smooth =
      estimate_gradient(sc.trace, vehicle::VehicleParams{});
  double rough_energy = 0.0;
  double smooth_energy = 0.0;
  for (std::size_t i = 1; i < res.det_steer_smoothed.size(); ++i) {
    rough_energy += std::abs(res.det_steer_smoothed[i] -
                             res.det_steer_smoothed[i - 1]);
  }
  for (std::size_t i = 1; i < smooth.det_steer_smoothed.size(); ++i) {
    smooth_energy += std::abs(smooth.det_steer_smoothed[i] -
                              smooth.det_steer_smoothed[i - 1]);
  }
  EXPECT_GT(rough_energy, 2.0 * smooth_energy);
}

TEST(Pipeline, SubsetOfSourcesWorks) {
  const Scenario sc = table3_scenario();
  PipelineConfig cfg;
  cfg.use_imu = false;
  cfg.use_gps = false;
  const PipelineResult res =
      estimate_gradient(sc.trace, vehicle::VehicleParams{}, cfg);
  EXPECT_EQ(res.tracks.size(), 2u);
  const TrackErrorStats stats = evaluate_track(res.fused, sc.trip);
  EXPECT_LT(stats.median_abs_deg, 0.6);
}

TEST(Pipeline, FusionDisabledPicksBestTrack) {
  const Scenario sc = table3_scenario();
  PipelineConfig cfg;
  cfg.enable_fusion = false;
  const PipelineResult res =
      estimate_gradient(sc.trace, vehicle::VehicleParams{}, cfg);
  EXPECT_NE(res.fused.source.find("best-single-track"), std::string::npos);
}

TEST(Pipeline, SurvivesGpsOutages) {
  Scenario sc = table3_scenario(44);
  sensors::SmartphoneConfig pc;
  pc.seed = 51;
  pc.gps_outages = {{30.0, 60.0}, {120.0, 150.0}};
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       vehicle::VehicleParams{}, pc);
  const PipelineResult res =
      estimate_gradient(sc.trace, vehicle::VehicleParams{});
  const TrackErrorStats stats = evaluate_track(res.fused, sc.trip);
  EXPECT_LT(stats.median_abs_deg, 0.6);
  EXPECT_LT(stats.mre, 0.3);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const Scenario sc = table3_scenario();
  const PipelineResult a =
      estimate_gradient(sc.trace, vehicle::VehicleParams{});
  const PipelineResult b =
      estimate_gradient(sc.trace, vehicle::VehicleParams{});
  ASSERT_EQ(a.fused.size(), b.fused.size());
  EXPECT_DOUBLE_EQ(a.fused.grade.back(), b.fused.grade.back());
  EXPECT_EQ(a.lane_changes.size(), b.lane_changes.size());
}

// Parameterized: accuracy holds across many independent drive/noise
// realizations, not just the tuned demo seed.
class PipelineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeedSweep, MedianWithinEnvelope) {
  const Scenario sc = table3_scenario(GetParam());
  const PipelineResult res =
      estimate_gradient(sc.trace, vehicle::VehicleParams{});
  const TrackErrorStats stats = evaluate_track(res.fused, sc.trip);
  EXPECT_LT(stats.median_abs_deg, 0.45) << "seed " << GetParam();
  EXPECT_LT(stats.mre, 0.30) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

TEST(Pipeline, CsvRoundTripGivesIdenticalResults) {
  const Scenario sc = table3_scenario();
  std::stringstream ss;
  sensors::write_csv(sc.trace, ss);
  const sensors::SensorTrace reparsed = sensors::read_csv(ss);
  const PipelineResult a =
      estimate_gradient(sc.trace, vehicle::VehicleParams{});
  const PipelineResult b =
      estimate_gradient(reparsed, vehicle::VehicleParams{});
  ASSERT_EQ(a.fused.size(), b.fused.size());
  for (std::size_t i = 0; i < a.fused.size(); i += 37) {
    EXPECT_DOUBLE_EQ(a.fused.grade[i], b.fused.grade[i]);
  }
}

}  // namespace
}  // namespace rge::core
