// Unit tests for emission factors, per-road fuel summaries, and the AADT
// traffic model.
#include "emissions/emissions.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"
#include "road/network.hpp"

namespace rge::emissions {
namespace {

using math::deg2rad;

TEST(EmissionMass, FactorsFromPaper) {
  EXPECT_DOUBLE_EQ(emission_mass_g(1.0, kCo2GramsPerGallon), 8908.0);
  EXPECT_DOUBLE_EQ(emission_mass_g(1.0, kPm25GramsPerGallon), 0.084);
  EXPECT_DOUBLE_EQ(emission_mass_g(2.5, kCo2GramsPerGallon), 22270.0);
  EXPECT_THROW(emission_mass_g(-1.0, kCo2GramsPerGallon),
               std::invalid_argument);
}

road::Road hilly_road() {
  road::RoadBuilder b("hilly");
  b.add_straight(1000.0, deg2rad(3.0));
  b.add_straight(1000.0, deg2rad(-3.0));
  return b.build();
}

road::Road flat_road() {
  road::RoadBuilder b("flat");
  b.add_straight(2000.0, 0.0);
  return b.build();
}

TEST(RoadFuel, FlatRoadMatchesFlatRate) {
  const road::Road r = flat_road();
  const RoadFuelSummary s = summarize_road_fuel(r, 11.1);
  EXPECT_NEAR(s.fuel_rate_gal_per_h, s.fuel_rate_flat_gal_per_h, 1e-9);
  EXPECT_NEAR(s.length_km, 2.0, 1e-6);
  EXPECT_NEAR(s.mean_grade_rad, 0.0, 1e-12);
  // Per-vehicle fuel = rate * traversal hours.
  const double hours = 2000.0 / 11.1 / 3600.0;
  EXPECT_NEAR(s.fuel_per_vehicle_gal, s.fuel_rate_gal_per_h * hours, 1e-9);
}

TEST(RoadFuel, HillyRoadBurnsMoreThanFlatAssumption) {
  const road::Road r = hilly_road();
  const RoadFuelSummary s = summarize_road_fuel(r, 11.1);
  // The up/down asymmetry (idle floor) raises the true average above the
  // flat-road assumption — the paper's Section IV-C effect.
  EXPECT_GT(s.fuel_rate_gal_per_h, 1.15 * s.fuel_rate_flat_gal_per_h);
  EXPECT_GT(s.fuel_per_vehicle_gal, s.fuel_per_vehicle_flat_gal);
}

TEST(RoadFuel, WithExternalGradeSeries) {
  const road::Road r = flat_road();
  // Pretend the estimator reported a constant 2-degree uphill.
  const std::vector<double> grades(100, deg2rad(2.0));
  const RoadFuelSummary s =
      summarize_road_fuel_with_grades(r, 11.1, grades, 20.0);
  EXPECT_GT(s.fuel_rate_gal_per_h, s.fuel_rate_flat_gal_per_h);
  EXPECT_NEAR(s.mean_grade_rad, deg2rad(2.0), 1e-12);
}

TEST(RoadFuel, Validation) {
  const road::Road r = flat_road();
  EXPECT_THROW(summarize_road_fuel(r, 0.0), std::invalid_argument);
  EXPECT_THROW(summarize_road_fuel_with_grades(r, 10.0, {}, 5.0),
               std::invalid_argument);
  EXPECT_THROW(
      summarize_road_fuel_with_grades(r, 10.0, {0.0}, 0.0),
      std::invalid_argument);
}

TEST(Traffic, AadtRangesPerClass) {
  TrafficModel tm;
  for (std::size_t i = 0; i < 50; ++i) {
    const double art = tm.aadt(road::RoadClass::kArterial, i);
    EXPECT_GE(art, tm.arterial_lo);
    EXPECT_LE(art, tm.arterial_hi);
    const double res = tm.aadt(road::RoadClass::kResidential, i);
    EXPECT_GE(res, tm.residential_lo);
    EXPECT_LE(res, tm.residential_hi);
    EXPECT_GT(art, res);  // by construction of the ranges
  }
}

TEST(Traffic, DeterministicPerIndex) {
  TrafficModel tm;
  EXPECT_DOUBLE_EQ(tm.aadt(road::RoadClass::kCollector, 3),
                   tm.aadt(road::RoadClass::kCollector, 3));
  EXPECT_NE(tm.aadt(road::RoadClass::kCollector, 3),
            tm.aadt(road::RoadClass::kCollector, 4));
}

TEST(Traffic, HourlyFraction) {
  TrafficModel tm;
  EXPECT_NEAR(tm.vehicles_per_hour(road::RoadClass::kArterial, 1),
              tm.aadt(road::RoadClass::kArterial, 1) / 24.0, 1e-9);
}

TEST(EmissionDensity, ScalesWithVolumeAndFuel) {
  RoadFuelSummary fuel;
  fuel.length_km = 2.0;
  fuel.fuel_per_vehicle_gal = 0.05;
  const double low = emission_density_g_per_km_h(fuel, 100.0,
                                                 kCo2GramsPerGallon);
  const double high = emission_density_g_per_km_h(fuel, 1000.0,
                                                  kCo2GramsPerGallon);
  EXPECT_NEAR(high / low, 10.0, 1e-9);
  // Hand check: 0.05 gal * 100 veh / 2 km * 8908 g/gal.
  EXPECT_NEAR(low, 0.05 * 100.0 / 2.0 * 8908.0, 1e-6);
  RoadFuelSummary bad;
  EXPECT_THROW(emission_density_g_per_km_h(bad, 1.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rge::emissions
