// Unit tests for the smartphone coordinate alignment stage.
#include "core/alignment.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"
#include "math/stats.hpp"
#include "road/road.hpp"
#include "sensors/smartphone.hpp"
#include "vehicle/trip.hpp"

namespace rge::core {
namespace {

using math::deg2rad;

struct Scenario {
  road::Road road;
  vehicle::Trip trip;
  sensors::SensorTrace trace;
};

Scenario curved_scenario(double heading_change_deg, bool lane_changes,
                         std::uint64_t seed = 1) {
  road::RoadBuilder b("align-road");
  b.add_section(road::SectionSpec{2000.0, 0.0, 0.0,
                                  deg2rad(heading_change_deg), 2});
  Scenario sc{b.build(), {}, {}};
  vehicle::TripConfig tc;
  tc.seed = seed;
  tc.allow_lane_changes = lane_changes;
  tc.lane_changes_per_km = lane_changes ? 4.0 : 0.0;
  sc.trip = vehicle::simulate_trip(sc.road, tc);
  sensors::SmartphoneConfig pc;
  pc.seed = seed + 100;
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       vehicle::VehicleParams{}, pc);
  return sc;
}

TEST(Alignment, EmptyTraceThrows) {
  EXPECT_THROW(align_states(sensors::SensorTrace{}), std::invalid_argument);
}

TEST(Alignment, OutputsAreSameLengthAsImu) {
  const Scenario sc = curved_scenario(0.0, false);
  const AlignedStates a = align_states(sc.trace);
  EXPECT_EQ(a.size(), sc.trace.imu.size());
  EXPECT_EQ(a.steer_rate.size(), a.size());
  EXPECT_EQ(a.road_rate.size(), a.size());
  EXPECT_EQ(a.accel_forward.size(), a.size());
  EXPECT_EQ(a.gps_available.size(), a.size());
}

TEST(Alignment, SteerRateNearZeroWithoutManeuvers) {
  const Scenario sc = curved_scenario(0.0, false);
  const AlignedStates a = align_states(sc.trace);
  std::vector<double> tail(a.steer_rate.begin() + 500, a.steer_rate.end());
  EXPECT_LT(math::stddev(tail), 0.03);
  EXPECT_NEAR(math::mean(tail), 0.0, 0.01);
}

TEST(Alignment, RoadRateTracksCurvatureOnBend) {
  // Steady 90-degree bend over 2 km: w_road = curvature * v.
  const Scenario sc = curved_scenario(90.0, false);
  const AlignedStates a = align_states(sc.trace);
  // Compare mid-trip road rate to the truth.
  const std::size_t mid = a.size() / 2;
  const auto& st = sc.trip.states[mid];
  const double expected = sc.road.curvature_at(st.s) * st.speed;
  EXPECT_NEAR(a.road_rate[mid], expected, 0.5 * std::abs(expected) + 0.005);
  // And the steering residual stays small (vehicle follows the road).
  std::vector<double> tail(a.steer_rate.begin() + 500, a.steer_rate.end());
  EXPECT_LT(math::stddev(tail), 0.04);
}

TEST(Alignment, LaneChangeBumpsSurviveAlignment) {
  const Scenario sc = curved_scenario(0.0, true, 3);
  ASSERT_FALSE(sc.trip.lane_changes.empty());
  const AlignedStates a = align_states(sc.trace);
  // Within each true lane-change window the steering rate must reach a
  // significant fraction of the generated peak.
  for (const auto& lc : sc.trip.lane_changes) {
    double max_abs = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a.t[i] >= lc.start_t && a.t[i] <= lc.end_t) {
        max_abs = std::max(max_abs, std::abs(a.steer_rate[i]));
      }
    }
    EXPECT_GT(max_abs, 0.6 * lc.peak_rate);
  }
}

TEST(Alignment, SpikeRemovalCleansDisturbances) {
  Scenario sc = curved_scenario(0.0, false, 5);
  // Inject a massive phone-shift transient into the raw gyro.
  for (std::size_t i = 2000; i < 2020; ++i) {
    sc.trace.imu[i].gyro_z += 2.0;
  }
  AlignmentConfig with;
  AlignmentConfig without;
  without.remove_spikes = false;
  const AlignedStates cleaned = align_states(sc.trace, with);
  const AlignedStates raw = align_states(sc.trace, without);
  double max_clean = 0.0;
  double max_raw = 0.0;
  for (std::size_t i = 1990; i < 2040; ++i) {
    max_clean = std::max(max_clean, std::abs(cleaned.steer_rate[i]));
    max_raw = std::max(max_raw, std::abs(raw.steer_rate[i]));
  }
  EXPECT_GT(max_raw, 1.0);
  EXPECT_LT(max_clean, 0.2);
}

TEST(Alignment, BiasRemovalCancelsGyroDrift) {
  Scenario sc = curved_scenario(0.0, false, 7);
  // Add a constant gyro bias.
  for (auto& s : sc.trace.imu) s.gyro_z += 0.02;
  AlignmentConfig with;
  AlignmentConfig without;
  without.remove_bias = false;
  const AlignedStates corrected = align_states(sc.trace, with);
  const AlignedStates uncorrected = align_states(sc.trace, without);
  // After the bias estimator converges the residual mean should be much
  // smaller than the injected bias.
  std::vector<double> tail_c(corrected.steer_rate.end() - 2000,
                             corrected.steer_rate.end());
  std::vector<double> tail_u(uncorrected.steer_rate.end() - 2000,
                             uncorrected.steer_rate.end());
  EXPECT_LT(std::abs(math::mean(tail_c)), 0.01);
  EXPECT_GT(std::abs(math::mean(tail_u)), 0.015);
}

TEST(Alignment, GpsAvailabilityFlag) {
  Scenario sc = curved_scenario(0.0, false, 9);
  // Re-simulate with an outage window.
  sensors::SmartphoneConfig pc;
  pc.seed = 109;
  pc.gps_outages = {{30.0, 45.0}};
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       vehicle::VehicleParams{}, pc);
  const AlignedStates a = align_states(sc.trace);
  std::size_t avail_in_outage = 0;
  std::size_t total_in_outage = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.t[i] > 33.0 && a.t[i] < 45.0) {
      ++total_in_outage;
      if (a.gps_available[i]) ++avail_in_outage;
    }
  }
  ASSERT_GT(total_in_outage, 0u);
  EXPECT_EQ(avail_in_outage, 0u);
  // During the outage the road-rate estimate decays rather than exploding.
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.t[i] > 33.0 && a.t[i] < 45.0) {
      EXPECT_LT(std::abs(a.road_rate[i]), 0.2);
    }
  }
}

TEST(Alignment, OutageGyroFallbackSuppressesCurveResidual) {
  // Curved road with a long GPS outage: without the fallback, the road
  // curvature shows up as sustained "steering" during the outage; with
  // it, the slow gyro average stands in for the road rate.
  Scenario sc = curved_scenario(150.0, false, 11);
  sensors::SmartphoneConfig pc;
  pc.seed = 211;
  pc.gps_outages = {{40.0, 100.0}};
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       vehicle::VehicleParams{}, pc);
  AlignmentConfig with;
  AlignmentConfig without;
  without.outage_gyro_fallback = false;
  const AlignedStates a_with = align_states(sc.trace, with);
  const AlignedStates a_without = align_states(sc.trace, without);
  double resid_with = 0.0;
  double resid_without = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < a_with.size(); ++i) {
    if (a_with.t[i] < 50.0 || a_with.t[i] > 95.0) continue;
    resid_with += std::abs(a_with.steer_rate[i]);
    resid_without += std::abs(a_without.steer_rate[i]);
    ++n;
  }
  ASSERT_GT(n, 100u);
  // The shared gyro white-noise floor dilutes the ratio; the fallback must
  // still remove a solid chunk of the curve-induced residual.
  EXPECT_LT(resid_with, 0.7 * resid_without);
}

}  // namespace
}  // namespace rge::core
