// Unit tests for the velocity measurement sources and the Eq. 2 adjustment.
#include "core/velocity_sources.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"
#include "math/stats.hpp"
#include "road/road.hpp"
#include "sensors/smartphone.hpp"
#include "vehicle/trip.hpp"

namespace rge::core {
namespace {

using math::deg2rad;

struct Scenario {
  road::Road road;
  vehicle::Trip trip;
  sensors::SensorTrace trace;
};

Scenario make_scenario(double grade_deg, std::uint64_t seed = 1) {
  road::RoadBuilder b("vs-road");
  b.add_straight(2500.0, deg2rad(grade_deg), 1);
  Scenario sc{b.build(), {}, {}};
  vehicle::TripConfig tc;
  tc.seed = seed;
  tc.allow_lane_changes = false;
  sc.trip = vehicle::simulate_trip(sc.road, tc);
  sensors::SmartphoneConfig pc;
  pc.seed = seed + 1000;
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       vehicle::VehicleParams{}, pc);
  return sc;
}

double truth_speed_at(const vehicle::Trip& trip, double t) {
  for (const auto& st : trip.states) {
    if (st.t >= t) return st.speed;
  }
  return trip.states.back().speed;
}

TEST(VelocitySources, GpsSkipsInvalidFixes) {
  Scenario sc = make_scenario(0.0);
  sensors::SmartphoneConfig pc;
  pc.seed = 77;
  pc.gps_outages = {{20.0, 40.0}};
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       vehicle::VehicleParams{}, pc);
  const auto meas = velocity_from_gps(sc.trace);
  for (const auto& m : meas) {
    EXPECT_FALSE(m.t >= 20.0 && m.t < 40.0);
  }
  EXPECT_FALSE(meas.empty());
}

TEST(VelocitySources, AccuracyOrdering) {
  // On flat ground the CAN-bus stream is the cleanest; on a hill the
  // dead-reckoned IMU stream is the worst (gravity misread as
  // acceleration between GPS blends).
  const Scenario flat = make_scenario(0.0, 3);
  auto err = [](const Scenario& sc,
                const std::vector<VelocityMeasurement>& ms) {
    double acc = 0.0;
    for (const auto& m : ms) {
      acc += std::abs(m.v - truth_speed_at(sc.trip, m.t));
    }
    return acc / static_cast<double>(ms.size());
  };
  EXPECT_LT(err(flat, velocity_from_canbus(flat.trace)),
            err(flat, velocity_from_speedometer(flat.trace)));
  const Scenario hill = make_scenario(4.0, 4);
  EXPECT_LT(err(hill, velocity_from_canbus(hill.trace)),
            err(hill, velocity_from_imu(hill.trace)));
  EXPECT_LT(err(hill, velocity_from_speedometer(hill.trace)),
            err(hill, velocity_from_imu(hill.trace)));
  // Declared variances reflect the ordering.
  VelocitySourceConfig cfg;
  EXPECT_LT(cfg.canbus_variance, cfg.speedometer_variance);
  EXPECT_LT(cfg.speedometer_variance, cfg.imu_variance);
}

TEST(VelocitySources, ImuStreamDriftsUphillWithoutCorrection) {
  // On a hill the flat-road dead reckoning misreads gravity as
  // acceleration; with the GPS blend disabled the error grows.
  const Scenario sc = make_scenario(4.0, 5);
  VelocitySourceConfig cfg;
  cfg.imu_gps_blend_per_s = 0.0;
  const auto imu = velocity_from_imu(sc.trace, cfg);
  ASSERT_GT(imu.size(), 100u);
  const auto& last = imu.back();
  const double err = last.v - truth_speed_at(sc.trip, last.t);
  EXPECT_GT(std::abs(err), 5.0);  // unbounded drift
  // With the blend the error stays bounded.
  const auto blended = velocity_from_imu(sc.trace);
  const double err_b =
      blended.back().v - truth_speed_at(sc.trip, blended.back().t);
  EXPECT_LT(std::abs(err_b), 3.0);
}

TEST(VelocitySources, RatesAndTimestamps) {
  const Scenario sc = make_scenario(0.0, 7);
  const auto can = velocity_from_canbus(sc.trace);
  ASSERT_GT(can.size(), 10u);
  for (std::size_t i = 1; i < can.size(); ++i) {
    EXPECT_GT(can[i].t, can[i - 1].t);
  }
  const auto imu = velocity_from_imu(sc.trace);
  // Emitted near 10 Hz.
  const double dur = imu.back().t - imu.front().t;
  EXPECT_NEAR(static_cast<double>(imu.size()) / dur, 10.0, 1.0);
}

TEST(Eq2Adjustment, ScalesInsideWindowOnly) {
  // Synthetic steering profile: constant alpha ramp inside one window.
  std::vector<double> imu_t;
  std::vector<double> w;
  for (double t = 0.0; t <= 20.0; t += 0.1) {
    imu_t.push_back(t);
    // 0.1 rad/s for t in [5, 7): alpha reaches 0.2 rad.
    w.push_back(t >= 5.0 && t < 7.0 ? 0.1 : 0.0);
  }
  std::vector<VelocityMeasurement> meas;
  for (double t = 0.0; t <= 20.0; t += 0.5) {
    meas.push_back(VelocityMeasurement{t, 10.0, 0.01});
  }
  DetectedLaneChange lc;
  lc.t_start = 5.0;
  lc.t_end = 8.0;
  const auto adjusted =
      apply_lane_change_adjustment(meas, imu_t, w, {lc});
  ASSERT_EQ(adjusted.size(), meas.size());
  for (std::size_t i = 0; i < adjusted.size(); ++i) {
    if (adjusted[i].t < 5.0 || adjusted[i].t > 8.0) {
      EXPECT_DOUBLE_EQ(adjusted[i].v, 10.0);
    }
  }
  // At t=7.5 alpha ~= 0.2 rad: v_L = 10 cos(0.2).
  for (const auto& m : adjusted) {
    if (std::abs(m.t - 7.5) < 1e-9) {
      EXPECT_NEAR(m.v, 10.0 * std::cos(0.2), 0.05);
    }
  }
}

TEST(Eq2Adjustment, Validation) {
  std::vector<VelocityMeasurement> meas{{0.0, 10.0, 0.01}};
  EXPECT_THROW(apply_lane_change_adjustment(meas, std::vector<double>{0.0},
                                            std::vector<double>{}, {}),
               std::invalid_argument);
  // No changes: identity.
  const auto out = apply_lane_change_adjustment(
      meas, std::vector<double>{0.0}, std::vector<double>{0.0}, {});
  EXPECT_DOUBLE_EQ(out[0].v, 10.0);
}

}  // namespace
}  // namespace rge::core
