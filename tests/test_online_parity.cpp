// Online-estimator parity and hot-path regression tests:
//   * incremental lane-change detection is bit-identical to the full
//     re-scan reference mode across the whole scenario matrix;
//   * the fused online grade tracks the batch pipeline within a pinned
//     RMSE band;
//   * push_imu performs zero heap allocations at steady state;
//   * non-monotonic timestamps are rejected per source;
//   * the speculative lane-change correction retires when the maneuver is
//     confirmed.
#include "core/online_estimator.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "obs/obs.hpp"
#include "road/network.hpp"
#include "sensors/smartphone.hpp"
#include "testing/scenario.hpp"
#include "vehicle/trip.hpp"

// ---- allocation counting ------------------------------------------------
// Global operator new/delete overrides count every heap allocation made by
// this binary; the steady-state test asserts the count does not move
// across a push_imu measurement window.
namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rge::core {
namespace {

/// Stream a trace into the estimator in timestamp order (the same
/// interleaving the app would see).
void stream_trace(OnlineGradientEstimator& est,
                  const sensors::SensorTrace& trace) {
  std::size_t gi = 0;
  std::size_t si = 0;
  std::size_t ci = 0;
  for (const auto& imu : trace.imu) {
    while (gi < trace.gps.size() && trace.gps[gi].t <= imu.t) {
      est.push_gps(trace.gps[gi++]);
    }
    while (si < trace.speedometer.size() &&
           trace.speedometer[si].t <= imu.t) {
      est.push_speedometer(trace.speedometer[si].t,
                           trace.speedometer[si].value);
      ++si;
    }
    while (ci < trace.canbus_speed.size() &&
           trace.canbus_speed[ci].t <= imu.t) {
      est.push_canbus(trace.canbus_speed[ci].t,
                      trace.canbus_speed[ci].value);
      ++ci;
    }
    est.push_imu(imu);
  }
}

bool lane_changes_identical(const std::vector<DetectedLaneChange>& a,
                            const std::vector<DetectedLaneChange>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].t_start != b[i].t_start || a[i].t_end != b[i].t_end ||
        a[i].type != b[i].type ||
        a[i].displacement_m != b[i].displacement_m ||
        a[i].peak_rate != b[i].peak_rate) {
      return false;
    }
  }
  return true;
}

// ---- incremental vs reference bit-identity ----------------------------

TEST(OnlineParity, IncrementalDetectionBitIdenticalAcrossScenarioMatrix) {
  const auto matrix = rge::testing::scenario_matrix();
  ASSERT_GE(matrix.size(), 10u);
  for (const auto& spec : matrix) {
    const auto world = rge::testing::build_world(spec);
    ASSERT_FALSE(world.traces.empty()) << spec.name;
    const auto& trace = world.traces.front();
    if (trace.imu.empty()) continue;

    OnlineEstimatorConfig inc_cfg;
    inc_cfg.incremental_detection = true;
    OnlineEstimatorConfig ref_cfg;
    ref_cfg.incremental_detection = false;

    OnlineGradientEstimator inc(vehicle::VehicleParams{}, inc_cfg);
    OnlineGradientEstimator ref(vehicle::VehicleParams{}, ref_cfg);
    stream_trace(inc, trace);
    stream_trace(ref, trace);

    EXPECT_TRUE(lane_changes_identical(inc.lane_changes(),
                                       ref.lane_changes()))
        << spec.name << ": incremental=" << inc.lane_changes().size()
        << " reference=" << ref.lane_changes().size();

    // Identical detections imply identical alpha corrections, hence
    // bit-identical EKF inputs and fused outputs.
    const auto ei = inc.estimate();
    const auto er = ref.estimate();
    EXPECT_EQ(ei.grade_rad, er.grade_rad) << spec.name;
    EXPECT_EQ(ei.speed_mps, er.speed_mps) << spec.name;
    EXPECT_EQ(ei.odometry_m, er.odometry_m) << spec.name;
  }
}

#if RGE_OBS_ENABLED
TEST(OnlineParity, IncrementalDetectionScansFarFewerSamples) {
  const auto matrix = rge::testing::scenario_matrix();
  const auto world = rge::testing::build_world(matrix.front());
  const auto& trace = world.traces.front();

  const auto scan_cost = [&](bool incremental) {
    rge::obs::reset_all();
    rge::obs::set_enabled(true);
    OnlineEstimatorConfig cfg;
    cfg.incremental_detection = incremental;
    OnlineGradientEstimator est(vehicle::VehicleParams{}, cfg);
    stream_trace(est, trace);
    const auto snap = rge::obs::Registry::global().snapshot();
    rge::obs::set_enabled(false);
    rge::obs::reset_all();
    const auto it = snap.counters.find("online.det_scan_samples");
    return it == snap.counters.end() ? std::int64_t{0} : it->second;
  };

  const std::int64_t incremental = scan_cost(true);
  const std::int64_t reference = scan_cost(false);
  ASSERT_GT(reference, 0);
  // The reference mode re-reads the whole ~300-sample window every tick;
  // the incremental machine touches each sample O(1) times outside bump
  // walks. An order of magnitude is the minimum we should see.
  EXPECT_LT(incremental * 10, reference)
      << "incremental=" << incremental << " reference=" << reference;
}
#endif

// ---- batch-vs-online fused-grade parity -------------------------------

TEST(OnlineParity, FusedGradeTracksBatchWithinBand) {
  road::Road road = road::make_table3_route(2019);
  vehicle::TripConfig tc;
  tc.seed = 31;
  tc.lane_changes_per_km = 3.0;
  const vehicle::Trip trip = vehicle::simulate_trip(road, tc);
  sensors::SmartphoneConfig pc;
  pc.seed = 101;
  const auto trace = sensors::simulate_sensors(trip, road.anchor(),
                                               vehicle::VehicleParams{}, pc);

  OnlineGradientEstimator online(vehicle::VehicleParams{});
  std::vector<double> t_online;
  std::vector<double> g_online;
  {
    std::size_t gi = 0, si = 0, ci = 0, n = 0;
    for (const auto& imu : trace.imu) {
      while (gi < trace.gps.size() && trace.gps[gi].t <= imu.t) {
        online.push_gps(trace.gps[gi++]);
      }
      while (si < trace.speedometer.size() &&
             trace.speedometer[si].t <= imu.t) {
        online.push_speedometer(trace.speedometer[si].t,
                                trace.speedometer[si].value);
        ++si;
      }
      while (ci < trace.canbus_speed.size() &&
             trace.canbus_speed[ci].t <= imu.t) {
        online.push_canbus(trace.canbus_speed[ci].t,
                           trace.canbus_speed[ci].value);
        ++ci;
      }
      online.push_imu(imu);
      if (++n % 5 == 0) {
        const auto e = online.estimate();
        t_online.push_back(e.t);
        g_online.push_back(e.grade_rad);
      }
    }
  }
  ASSERT_GT(t_online.size(), 100u);

  const auto batch = estimate_gradient(trace, vehicle::VehicleParams{});
  const auto& fused = batch.fused;
  ASSERT_GT(fused.size(), 10u);

  // RMSE between the online estimate and the batch fused track on the
  // online timeline (linear interpolation into the batch track), skipping
  // the first 20 s of filter convergence.
  const auto batch_at = [&](double q) {
    if (q <= fused.t.front()) return fused.grade.front();
    if (q >= fused.t.back()) return fused.grade.back();
    std::size_t hi = 1;
    while (fused.t[hi] < q) ++hi;
    const std::size_t lo = hi - 1;
    const double denom = fused.t[hi] - fused.t[lo];
    const double f = denom > 0.0 ? (q - fused.t[lo]) / denom : 0.0;
    return fused.grade[lo] * (1.0 - f) + fused.grade[hi] * f;
  };
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < t_online.size(); ++i) {
    if (t_online[i] < trace.imu.front().t + 20.0) continue;
    const double d = g_online[i] - batch_at(t_online[i]);
    acc += d * d;
    ++count;
  }
  ASSERT_GT(count, 50u);
  const double rmse_rad = std::sqrt(acc / static_cast<double>(count));
  // Pinned parity band: the causal online filter lags the batch estimate
  // at grade transitions but must stay in the same accuracy class.
  // Measured ~0.004 rad on this scenario; the band allows 2.5x headroom.
  EXPECT_LT(rmse_rad, 0.010) << "rmse_rad=" << rmse_rad;
}

// ---- steady-state allocation freedom ----------------------------------

TEST(OnlineParity, SteadyStatePushImuDoesNotAllocate) {
  rge::obs::set_enabled(false);
  OnlineGradientEstimator est(vehicle::VehicleParams{});

  // Straight constant-speed driving: tiny gyro jitter below the detector
  // zero band, constant specific force, CAN-bus speed at 1 Hz.
  const double imu_dt = 0.02;
  double next_canbus_t = 0.0;
  const auto drive = [&](double t_begin, double t_end) {
    for (double t = t_begin; t < t_end; t += imu_dt) {
      if (t >= next_canbus_t) {
        est.push_canbus(t, 15.0);
        next_canbus_t = t + 1.0;
      }
      sensors::ImuSample s;
      s.t = t;
      s.accel_forward = 0.01;
      s.gyro_z = 0.001 * std::sin(t);
      est.push_imu(s);
    }
  };

  // Warm up past the detection-ring fill point (buffer is 30 s).
  drive(0.0, 40.0);

  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  drive(40.0, 60.0);
  const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << (after - before) << " allocations in the steady-state window";
}

// ---- per-source timestamp monotonicity --------------------------------

TEST(OnlineParity, NonMonotonicTimestampsRejectedPerSource) {
  OnlineGradientEstimator est(vehicle::VehicleParams{});

  est.push_canbus(1.0, 10.0);
  EXPECT_DOUBLE_EQ(est.estimate().speed_mps, 10.0);
  est.push_canbus(0.5, 40.0);  // replayed: must be ignored
  EXPECT_DOUBLE_EQ(est.estimate().speed_mps, 10.0);
  est.push_canbus(1.0, 40.0);  // duplicate timestamp: must be ignored
  EXPECT_DOUBLE_EQ(est.estimate().speed_mps, 10.0);
  // Advancing timestamp: accepted, state moves. Keep the measurement
  // close to the filter state so the EKF's NIS gate does not discard it.
  est.push_canbus(2.0, 11.0);
  EXPECT_NE(est.estimate().speed_mps, 10.0);

  // Speedometer stream is filtered independently of the CAN-bus stream.
  est.push_speedometer(0.25, 12.0);
  const double after_speedo = est.estimate().speed_mps;
  est.push_speedometer(0.25, 99.0);
  EXPECT_DOUBLE_EQ(est.estimate().speed_mps, after_speedo);

  // GPS replays are dropped too.
  sensors::GpsFix fix;
  fix.valid = true;
  fix.t = 3.0;
  fix.speed_mps = 20.0;
  fix.heading_rad = 0.0;
  est.push_gps(fix);
  const double after_gps = est.estimate().speed_mps;
  fix.t = 2.5;
  fix.speed_mps = 77.0;
  est.push_gps(fix);
  EXPECT_DOUBLE_EQ(est.estimate().speed_mps, after_gps);

  // IMU replays: no state advance, no crash.
  sensors::ImuSample s;
  s.t = 5.0;
  s.accel_forward = 0.0;
  s.gyro_z = 0.0;
  est.push_imu(s);
  const auto before = est.estimate();
  s.t = 4.0;
  s.accel_forward = 100.0;  // would be visible if processed
  est.push_imu(s);
  const auto after = est.estimate();
  EXPECT_EQ(before.t, after.t);
  EXPECT_EQ(before.grade_rad, after.grade_rad);
  EXPECT_EQ(before.speed_mps, after.speed_mps);
}

// ---- alpha retirement at confirmation ---------------------------------

TEST(OnlineParity, AlphaRetiresWhenManeuverConfirms) {
  road::Road road = road::make_table3_route(2019);
  vehicle::TripConfig tc;
  tc.seed = 44;
  tc.lane_changes_per_km = 5.0;
  const vehicle::Trip trip = vehicle::simulate_trip(road, tc);
  sensors::SmartphoneConfig pc;
  pc.seed = 114;
  const auto trace = sensors::simulate_sensors(trip, road.anchor(),
                                               vehicle::VehicleParams{}, pc);

  OnlineGradientEstimator est(vehicle::VehicleParams{});
  double active_s = 0.0;
  double prev_t = trace.imu.front().t;
  {
    std::size_t gi = 0, si = 0, ci = 0;
    for (const auto& imu : trace.imu) {
      while (gi < trace.gps.size() && trace.gps[gi].t <= imu.t) {
        est.push_gps(trace.gps[gi++]);
      }
      while (si < trace.speedometer.size() &&
             trace.speedometer[si].t <= imu.t) {
        est.push_speedometer(trace.speedometer[si].t,
                             trace.speedometer[si].value);
        ++si;
      }
      while (ci < trace.canbus_speed.size() &&
             trace.canbus_speed[ci].t <= imu.t) {
        est.push_canbus(trace.canbus_speed[ci].t,
                        trace.canbus_speed[ci].value);
        ++ci;
      }
      est.push_imu(imu);
      if (est.estimate().in_lane_change) active_s += imu.t - prev_t;
      prev_t = imu.t;
    }
  }

  const std::size_t confirmed = est.lane_changes().size();
  ASSERT_GE(confirmed, 2u);
  // Before the fix, confirmation never retired alpha: the still-pending
  // second bump kept re-arming the correction and alpha stayed active for
  // max_bump_gap_s (4 s) past every maneuver, inflating active time to
  // ~12+ s per maneuver. Retired-at-confirmation bounds it by roughly the
  // maneuver duration plus one gap window.
  const double budget_per_maneuver_s = 12.0;
  EXPECT_LT(active_s,
            budget_per_maneuver_s * static_cast<double>(confirmed) + 8.0)
      << "alpha active " << active_s << " s across " << confirmed
      << " confirmed maneuvers";

  // And the corrected online track must stay in the batch accuracy class
  // on this lane-change-heavy drive.
  const auto batch = estimate_gradient(trace, vehicle::VehicleParams{});
  GradeTrack online_track;
  online_track.source = "online";
  // (Track recorded separately above would complicate the loop; re-run.)
  OnlineGradientEstimator est2(vehicle::VehicleParams{});
  {
    std::size_t gi = 0, si = 0, ci = 0, n = 0;
    for (const auto& imu : trace.imu) {
      while (gi < trace.gps.size() && trace.gps[gi].t <= imu.t) {
        est2.push_gps(trace.gps[gi++]);
      }
      while (si < trace.speedometer.size() &&
             trace.speedometer[si].t <= imu.t) {
        est2.push_speedometer(trace.speedometer[si].t,
                              trace.speedometer[si].value);
        ++si;
      }
      while (ci < trace.canbus_speed.size() &&
             trace.canbus_speed[ci].t <= imu.t) {
        est2.push_canbus(trace.canbus_speed[ci].t,
                         trace.canbus_speed[ci].value);
        ++ci;
      }
      est2.push_imu(imu);
      if (++n % 5 == 0) {
        const auto e = est2.estimate();
        online_track.t.push_back(e.t);
        online_track.grade.push_back(e.grade_rad);
        online_track.grade_var.push_back(std::max(1e-10, e.grade_var));
        online_track.speed.push_back(e.speed_mps);
        online_track.s.push_back(e.odometry_m);
      }
    }
  }
  const auto st_online = evaluate_track(online_track, trip);
  const auto st_batch = evaluate_track(batch.fused, trip);
  EXPECT_LT(st_online.median_abs_deg, 2.0 * st_batch.median_abs_deg + 0.05);
}

}  // namespace
}  // namespace rge::core
