// Unit tests for the from-scratch MLP.
#include "baselines/mlp.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "math/rng.hpp"

namespace rge::baselines {
namespace {

TEST(Mlp, ConfigValidation) {
  EXPECT_THROW(Mlp(MlpConfig{.layers = {3}}), std::invalid_argument);
  EXPECT_THROW(Mlp(MlpConfig{.layers = {3, 0, 1}}), std::invalid_argument);
}

TEST(Mlp, PredictValidatesInputSize) {
  Mlp mlp(MlpConfig{.layers = {2, 4, 1}});
  EXPECT_THROW((void)mlp.predict(std::vector<double>{1.0}),
               std::invalid_argument);
  const auto out = mlp.predict(std::vector<double>{1.0, 2.0});
  EXPECT_EQ(out.size(), 1u);
}

TEST(Mlp, DeterministicInitialization) {
  Mlp a(MlpConfig{.layers = {2, 8, 1}, .seed = 5});
  Mlp b(MlpConfig{.layers = {2, 8, 1}, .seed = 5});
  const std::vector<double> x{0.3, -0.7};
  EXPECT_DOUBLE_EQ(a.predict(x)[0], b.predict(x)[0]);
  Mlp c(MlpConfig{.layers = {2, 8, 1}, .seed = 6});
  EXPECT_NE(a.predict(x)[0], c.predict(x)[0]);
}

TEST(Mlp, TrainEpochValidatesSizes) {
  Mlp mlp(MlpConfig{.layers = {2, 4, 1}});
  std::vector<double> in(10);  // 5 rows
  std::vector<double> tg(4);   // mismatched
  EXPECT_THROW(mlp.train_epoch(in, tg, 5), std::invalid_argument);
  EXPECT_THROW(mlp.evaluate(in, tg, 5), std::invalid_argument);
}

TEST(Mlp, LearnsLinearFunction) {
  math::Rng rng(1);
  const std::size_t rows = 256;
  std::vector<double> in;
  std::vector<double> tg;
  for (std::size_t i = 0; i < rows; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    in.push_back(a);
    in.push_back(b);
    tg.push_back(0.5 * a - 0.3 * b + 0.1);
  }
  Mlp mlp(MlpConfig{.layers = {2, 8, 1}, .learning_rate = 5e-3, .seed = 2});
  const double mse = mlp.fit(in, tg, rows, 200);
  EXPECT_LT(mse, 1e-3);
  EXPECT_NEAR(mlp.predict(std::vector<double>{0.5, 0.5})[0],
              0.5 * 0.5 - 0.3 * 0.5 + 0.1, 0.05);
}

TEST(Mlp, LearnsNonlinearXorStyle) {
  // XOR on {-1, 1}^2: requires the hidden layer.
  std::vector<double> in{-1, -1, -1, 1, 1, -1, 1, 1};
  std::vector<double> tg{-1, 1, 1, -1};
  Mlp mlp(MlpConfig{.layers = {2, 8, 1},
                    .learning_rate = 2e-2,
                    .batch_size = 4,
                    .seed = 3});
  const double mse = mlp.fit(in, tg, 4, 800);
  EXPECT_LT(mse, 0.05);
  EXPECT_GT(mlp.predict(std::vector<double>{-1.0, 1.0})[0], 0.5);
  EXPECT_LT(mlp.predict(std::vector<double>{1.0, 1.0})[0], -0.5);
}

TEST(Mlp, TrainingReducesLoss) {
  math::Rng rng(4);
  const std::size_t rows = 128;
  std::vector<double> in;
  std::vector<double> tg;
  for (std::size_t i = 0; i < rows; ++i) {
    const double x = rng.uniform(-2.0, 2.0);
    in.push_back(x);
    tg.push_back(std::sin(x));
  }
  Mlp mlp(MlpConfig{.layers = {1, 16, 16, 1}, .seed = 5});
  const double before = mlp.evaluate(in, tg, rows);
  mlp.fit(in, tg, rows, 100);
  const double after = mlp.evaluate(in, tg, rows);
  EXPECT_LT(after, 0.5 * before);
}

TEST(Mlp, EmptyEpochIsNoOp) {
  Mlp mlp(MlpConfig{.layers = {1, 2, 1}});
  EXPECT_DOUBLE_EQ(mlp.train_epoch({}, {}, 0), 0.0);
  EXPECT_DOUBLE_EQ(mlp.evaluate({}, {}, 0), 0.0);
}

TEST(Mlp, MultiOutputRegression) {
  math::Rng rng(6);
  const std::size_t rows = 200;
  std::vector<double> in;
  std::vector<double> tg;
  for (std::size_t i = 0; i < rows; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    in.push_back(x);
    tg.push_back(x);
    tg.push_back(-x);
  }
  Mlp mlp(MlpConfig{.layers = {1, 8, 2}, .learning_rate = 5e-3, .seed = 7});
  const double mse = mlp.fit(in, tg, rows, 300);
  EXPECT_LT(mse, 0.01);
  const auto out = mlp.predict(std::vector<double>{0.4});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0], 0.4, 0.1);
  EXPECT_NEAR(out[1], -0.4, 0.1);
}

}  // namespace
}  // namespace rge::baselines
