// Unit tests for angle utilities.
#include "math/angles.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace rge::math {
namespace {

TEST(Angles, DegRadRoundTrip) {
  EXPECT_DOUBLE_EQ(deg2rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad2deg(kPi / 2.0), 90.0);
  for (double d : {-123.4, -1.0, 0.0, 57.3, 359.0}) {
    EXPECT_NEAR(rad2deg(deg2rad(d)), d, 1e-12);
  }
}

TEST(Angles, WrapPi) {
  EXPECT_NEAR(wrap_pi(0.0), 0.0, 1e-15);
  EXPECT_NEAR(wrap_pi(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi - 0.1), kPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(3.0 * kTwoPi + 0.5), 0.5, 1e-9);
  // Boundary: the interval is [-pi, pi), so +pi wraps to -pi.
  EXPECT_NEAR(wrap_pi(kPi), -kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi), -kPi, 1e-12);
}

TEST(Angles, WrapTwoPi) {
  EXPECT_NEAR(wrap_two_pi(-0.1), kTwoPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_two_pi(kTwoPi + 0.25), 0.25, 1e-12);
  for (double a : {-10.0, -1.0, 0.0, 1.0, 10.0}) {
    const double w = wrap_two_pi(a);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, kTwoPi + 1e-12);
  }
}

TEST(Angles, AngleDiffShortestPath) {
  EXPECT_NEAR(angle_diff(0.1, -0.1), 0.2, 1e-12);
  // Across the wrap: 179 deg to -179 deg is -2 deg, not +358.
  EXPECT_NEAR(angle_diff(deg2rad(-179.0), deg2rad(179.0)), deg2rad(2.0),
              1e-9);
  EXPECT_NEAR(angle_diff(deg2rad(179.0), deg2rad(-179.0)), deg2rad(-2.0),
              1e-9);
}

TEST(Angles, SlopeConversions) {
  EXPECT_NEAR(slope_to_angle(1.0), kPi / 4.0, 1e-12);
  EXPECT_NEAR(angle_to_slope(kPi / 4.0), 1.0, 1e-12);
  EXPECT_NEAR(angle_to_percent_grade(std::atan(0.05)), 5.0, 1e-9);
  // Round trip for small slopes.
  for (double s : {-0.08, -0.01, 0.0, 0.02, 0.1}) {
    EXPECT_NEAR(angle_to_slope(slope_to_angle(s)), s, 1e-12);
  }
}

}  // namespace
}  // namespace rge::math
