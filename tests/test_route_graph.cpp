// Unit tests for the routing graph and gradient-aware edge costs.
#include "planning/route_graph.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"

namespace rge::planning {
namespace {

using math::deg2rad;

Edge make_edge(std::size_t from, std::size_t to, double length,
               double grade = 0.0) {
  Edge e;
  e.from = from;
  e.to = to;
  e.length_m = length;
  e.grade_step_m = 25.0;
  e.grades.assign(static_cast<std::size_t>(length / 25.0), grade);
  if (e.grades.empty()) e.grades.push_back(grade);
  return e;
}

TEST(RouteGraph, AddEdgeValidation) {
  RouteGraph g(3);
  EXPECT_THROW(g.add_edge(make_edge(0, 5, 100.0)), std::invalid_argument);
  Edge bad = make_edge(0, 1, 100.0);
  bad.length_m = 0.0;
  EXPECT_THROW(g.add_edge(bad), std::invalid_argument);
  bad = make_edge(0, 1, 100.0);
  bad.grades.clear();
  EXPECT_THROW(g.add_edge(bad), std::invalid_argument);
  EXPECT_EQ(g.add_edge(make_edge(0, 1, 100.0)), 0u);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(RouteGraph, BidirectionalMirrorsGrades) {
  RouteGraph g(2);
  g.add_bidirectional(make_edge(0, 1, 100.0, deg2rad(3.0)));
  ASSERT_EQ(g.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(g.edge(0).grades.front(), deg2rad(3.0));
  EXPECT_DOUBLE_EQ(g.edge(1).grades.front(), -deg2rad(3.0));
  EXPECT_EQ(g.edge(1).from, 1u);
  EXPECT_EQ(g.edge(1).to, 0u);
}

TEST(RouteGraph, ShortestPathByDistance) {
  // 0 --100-- 1 --100-- 2 and a 150 m direct edge 0-2.
  RouteGraph g(3);
  g.add_edge(make_edge(0, 1, 100.0));
  g.add_edge(make_edge(1, 2, 100.0));
  g.add_edge(make_edge(0, 2, 150.0));
  const auto route = g.shortest_path(0, 2, edge_cost_distance);
  ASSERT_TRUE(route.found);
  EXPECT_DOUBLE_EQ(route.cost, 150.0);
  EXPECT_EQ(route.edges.size(), 1u);
  EXPECT_EQ(route.nodes.front(), 0u);
  EXPECT_EQ(route.nodes.back(), 2u);
}

TEST(RouteGraph, UnreachableReturnsNotFound) {
  RouteGraph g(3);
  g.add_edge(make_edge(0, 1, 100.0));
  const auto route = g.shortest_path(0, 2, edge_cost_distance);
  EXPECT_FALSE(route.found);
  EXPECT_THROW(g.shortest_path(0, 9, edge_cost_distance),
               std::invalid_argument);
}

TEST(RouteGraph, FuelCostPrefersFlatDetour) {
  // Short steep climb vs longer flat detour between 0 and 3.
  RouteGraph g(4);
  g.add_edge(make_edge(0, 3, 1000.0, deg2rad(5.0)));  // over the hill
  g.add_edge(make_edge(0, 1, 600.0));
  g.add_edge(make_edge(1, 2, 600.0));
  g.add_edge(make_edge(2, 3, 600.0));  // 1.8 km flat
  const double v = 11.1;
  const auto by_dist = g.shortest_path(0, 3, edge_cost_distance);
  const auto by_fuel = g.shortest_path(
      0, 3, [v](const Edge& e) { return edge_cost_fuel(e, v); });
  ASSERT_TRUE(by_dist.found);
  ASSERT_TRUE(by_fuel.found);
  EXPECT_EQ(by_dist.edges.size(), 1u);   // the hill is shorter
  EXPECT_EQ(by_fuel.edges.size(), 3u);   // but the detour is cheaper
  EXPECT_GT(by_fuel.length_m, by_dist.length_m);
}

TEST(RouteGraph, EdgeCostHelpers) {
  const Edge e = make_edge(0, 1, 1000.0, deg2rad(2.0));
  EXPECT_DOUBLE_EQ(edge_cost_distance(e), 1000.0);
  EXPECT_NEAR(edge_cost_time(e, 10.0), 100.0, 1e-12);
  EXPECT_THROW(edge_cost_time(e, 0.0), std::invalid_argument);
  const double fuel_up = edge_cost_fuel(e, 10.0);
  const Edge flat = make_edge(0, 1, 1000.0, 0.0);
  EXPECT_GT(fuel_up, edge_cost_fuel(flat, 10.0));
  EXPECT_THROW(edge_cost_fuel(e, -1.0), std::invalid_argument);
}

TEST(GridCity, StructureAndDeterminism) {
  EXPECT_THROW(make_grid_city(1, 5, 200.0, 1), std::invalid_argument);
  const RouteGraph a = make_grid_city(4, 5, 200.0, 9);
  EXPECT_EQ(a.node_count(), 20u);
  // Streets: horizontal 4*(5-1)=16, vertical (4-1)*5=15, both directions.
  EXPECT_EQ(a.edge_count(), 2u * (16u + 15u));
  const RouteGraph b = make_grid_city(4, 5, 200.0, 9);
  EXPECT_DOUBLE_EQ(a.edge(7).grades.front(), b.edge(7).grades.front());
}

TEST(GridCity, TerrainIsConservativeAndHasASlope) {
  const std::size_t rows = 6;
  const std::size_t cols = 6;
  const RouteGraph g = make_grid_city(rows, cols, 250.0, 3);
  // Conservative field: any cycle's signed elevation change sums to ~0.
  // Walk the perimeter of the first block: (0,0)->(0,1)->(1,1)->(1,0)->(0,0).
  auto grade_of = [&](std::size_t from, std::size_t to) {
    for (std::size_t ei = 0; ei < g.edge_count(); ++ei) {
      const Edge& e = g.edge(ei);
      if (e.from == from && e.to == to) return e.grades.front();
    }
    ADD_FAILURE() << "edge " << from << "->" << to << " missing";
    return 0.0;
  };
  const double loop = std::sin(grade_of(0, 1)) + std::sin(grade_of(1, 1 + cols)) +
                      std::sin(grade_of(1 + cols, cols)) +
                      std::sin(grade_of(cols, 0));
  EXPECT_NEAR(loop * 250.0, 0.0, 1e-9);  // metres gained around the loop

  // The slope between the hilly corner and the flat corner produces real
  // grades somewhere, while the flat quadrant stays gentle.
  double max_grade = 0.0;
  double flat_quadrant = 0.0;
  int flat_n = 0;
  for (std::size_t ei = 0; ei < g.edge_count(); ++ei) {
    const Edge& e = g.edge(ei);
    max_grade = std::max(max_grade, std::abs(e.grades.front()));
    const std::size_t r = e.from / cols;
    const std::size_t c = e.from % cols;
    if (r >= rows - 2 && c >= cols - 2) {
      flat_quadrant += std::abs(e.grades.front());
      ++flat_n;
    }
  }
  ASSERT_GT(flat_n, 0);
  EXPECT_GT(max_grade, deg2rad(1.5));
  EXPECT_LT(flat_quadrant / flat_n, 0.5 * max_grade);
}

TEST(GridCity, AllNodesConnected) {
  const RouteGraph g = make_grid_city(5, 5, 200.0, 4);
  for (std::size_t n = 1; n < g.node_count(); ++n) {
    EXPECT_TRUE(g.shortest_path(0, n, edge_cost_distance).found)
        << "node " << n;
  }
}

TEST(RouteGraph, ManhattanDistanceOnGrid) {
  const RouteGraph g = make_grid_city(4, 4, 300.0, 5);
  // Corner to corner: (rows-1 + cols-1) blocks.
  const auto route = g.shortest_path(0, 15, edge_cost_distance);
  ASSERT_TRUE(route.found);
  EXPECT_NEAR(route.cost, 6.0 * 300.0, 1e-9);
}

}  // namespace
}  // namespace rge::planning
