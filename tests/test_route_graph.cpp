// Unit tests for the routing graph and gradient-aware edge costs.
#include "planning/route_graph.hpp"

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "math/angles.hpp"
#include "planning/city_gen.hpp"

namespace rge::planning {
namespace {

using math::deg2rad;

Edge make_edge(std::size_t from, std::size_t to, double length,
               double grade = 0.0) {
  Edge e;
  e.from = from;
  e.to = to;
  e.length_m = length;
  e.grade_step_m = 25.0;
  e.grades.assign(static_cast<std::size_t>(length / 25.0), grade);
  if (e.grades.empty()) e.grades.push_back(grade);
  return e;
}

TEST(RouteGraph, AddEdgeValidation) {
  RouteGraph g(3);
  EXPECT_THROW(g.add_edge(make_edge(0, 5, 100.0)), std::invalid_argument);
  Edge bad = make_edge(0, 1, 100.0);
  bad.length_m = 0.0;
  EXPECT_THROW(g.add_edge(bad), std::invalid_argument);
  bad = make_edge(0, 1, 100.0);
  bad.grades.clear();
  EXPECT_THROW(g.add_edge(bad), std::invalid_argument);
  EXPECT_EQ(g.add_edge(make_edge(0, 1, 100.0)), 0u);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(RouteGraph, BidirectionalMirrorsGrades) {
  RouteGraph g(2);
  g.add_bidirectional(make_edge(0, 1, 100.0, deg2rad(3.0)));
  ASSERT_EQ(g.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(g.edge(0).grades.front(), deg2rad(3.0));
  EXPECT_DOUBLE_EQ(g.edge(1).grades.front(), -deg2rad(3.0));
  EXPECT_EQ(g.edge(1).from, 1u);
  EXPECT_EQ(g.edge(1).to, 0u);
}

TEST(RouteGraph, ShortestPathByDistance) {
  // 0 --100-- 1 --100-- 2 and a 150 m direct edge 0-2.
  RouteGraph g(3);
  g.add_edge(make_edge(0, 1, 100.0));
  g.add_edge(make_edge(1, 2, 100.0));
  g.add_edge(make_edge(0, 2, 150.0));
  const auto route = g.shortest_path(0, 2, edge_cost_distance);
  ASSERT_TRUE(route.found);
  EXPECT_DOUBLE_EQ(route.cost, 150.0);
  EXPECT_EQ(route.edges.size(), 1u);
  EXPECT_EQ(route.nodes.front(), 0u);
  EXPECT_EQ(route.nodes.back(), 2u);
}

TEST(RouteGraph, UnreachableReturnsNotFound) {
  RouteGraph g(3);
  g.add_edge(make_edge(0, 1, 100.0));
  const auto route = g.shortest_path(0, 2, edge_cost_distance);
  EXPECT_FALSE(route.found);
  EXPECT_THROW(g.shortest_path(0, 9, edge_cost_distance),
               std::invalid_argument);
}

TEST(RouteGraph, FuelCostPrefersFlatDetour) {
  // Short steep climb vs longer flat detour between 0 and 3.
  RouteGraph g(4);
  g.add_edge(make_edge(0, 3, 1000.0, deg2rad(5.0)));  // over the hill
  g.add_edge(make_edge(0, 1, 600.0));
  g.add_edge(make_edge(1, 2, 600.0));
  g.add_edge(make_edge(2, 3, 600.0));  // 1.8 km flat
  const double v = 11.1;
  const auto by_dist = g.shortest_path(0, 3, edge_cost_distance);
  const auto by_fuel = g.shortest_path(
      0, 3, [v](const Edge& e) { return edge_cost_fuel(e, v); });
  ASSERT_TRUE(by_dist.found);
  ASSERT_TRUE(by_fuel.found);
  EXPECT_EQ(by_dist.edges.size(), 1u);   // the hill is shorter
  EXPECT_EQ(by_fuel.edges.size(), 3u);   // but the detour is cheaper
  EXPECT_GT(by_fuel.length_m, by_dist.length_m);
}

TEST(RouteGraph, EdgeCostHelpers) {
  const Edge e = make_edge(0, 1, 1000.0, deg2rad(2.0));
  EXPECT_DOUBLE_EQ(edge_cost_distance(e), 1000.0);
  EXPECT_NEAR(edge_cost_time(e, 10.0), 100.0, 1e-12);
  EXPECT_THROW(edge_cost_time(e, 0.0), std::invalid_argument);
  const double fuel_up = edge_cost_fuel(e, 10.0);
  const Edge flat = make_edge(0, 1, 1000.0, 0.0);
  EXPECT_GT(fuel_up, edge_cost_fuel(flat, 10.0));
  EXPECT_THROW(edge_cost_fuel(e, -1.0), std::invalid_argument);
}

TEST(RouteGraph, AddEdgeRejectsInconsistentGradeStep) {
  RouteGraph g(2);
  // 4 samples * 25 m = 100 m: consistent.
  Edge ok = make_edge(0, 1, 100.0);
  ASSERT_EQ(ok.grades.size(), 4u);
  EXPECT_NO_THROW(g.add_edge(ok));
  // Same samples but a lying step: 4 * 10 m != 100 m.
  Edge bad = make_edge(0, 1, 100.0);
  bad.grade_step_m = 10.0;
  EXPECT_THROW(g.add_edge(bad), std::invalid_argument);
  // Dropping a sample without fixing the step is equally inconsistent.
  bad = make_edge(0, 1, 100.0);
  bad.grades.pop_back();
  EXPECT_THROW(g.add_edge(bad), std::invalid_argument);
  // Non-default steps are fine when they cover the length exactly.
  Edge fine = make_edge(0, 1, 100.0);
  fine.grade_step_m = 12.5;
  fine.grades.assign(8, 0.01);
  EXPECT_NO_THROW(g.add_edge(fine));
}

TEST(RouteGraph, FuelCostUsesStoredGradeStep) {
  // Regression: edge_cost_fuel used to re-derive the step as
  // length / grades.size(), silently ignoring grade_step_m. With a
  // non-default (but consistent) step the integration time per sample
  // must come from the stored step.
  Edge e;
  e.from = 0;
  e.to = 1;
  e.length_m = 100.0;
  e.grade_step_m = 12.5;
  e.grades.assign(8, deg2rad(3.0));
  const double v = 12.0;
  const double got = edge_cost_fuel(e, v);
  double manual = 0.0;
  for (const double g : e.grades) {
    manual += emissions::fuel_used_gal(v, 0.0, g, e.grade_step_m / v,
                                       emissions::VspParams{});
  }
  EXPECT_EQ(got, manual);
  // And the cost is invariant to how the same physical profile is sampled
  // only through the dt = step/speed scaling, so halving the step while
  // doubling the sample count keeps the total integration time equal.
  Edge finer = e;
  finer.grade_step_m = 6.25;
  finer.grades.assign(16, deg2rad(3.0));
  EXPECT_NEAR(edge_cost_fuel(finer, v), got, 1e-15);
}

TEST(RouteGraph, ShortestPathTieBreaksByLowerEdgeIndex) {
  // Diamond with two bitwise-equal-cost paths; the lower-indexed edges
  // must win regardless of heap pop order.
  RouteGraph g(4);
  g.add_edge(make_edge(0, 1, 100.0));  // e0
  g.add_edge(make_edge(0, 2, 100.0));  // e1
  g.add_edge(make_edge(1, 3, 100.0));  // e2
  g.add_edge(make_edge(2, 3, 100.0));  // e3
  const auto route = g.shortest_path(0, 3, edge_cost_distance);
  ASSERT_TRUE(route.found);
  EXPECT_EQ(route.edges, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(route.nodes, (std::vector<std::size_t>{0, 1, 3}));

  // Mirror diamond with the cheap branch added last: edge index, not
  // insertion order of the *nodes*, decides.
  RouteGraph h(4);
  h.add_edge(make_edge(0, 2, 100.0));  // e0
  h.add_edge(make_edge(2, 3, 100.0));  // e1
  h.add_edge(make_edge(0, 1, 100.0));  // e2
  h.add_edge(make_edge(1, 3, 100.0));  // e3
  const auto route2 = h.shortest_path(0, 3, edge_cost_distance);
  ASSERT_TRUE(route2.found);
  EXPECT_EQ(route2.edges, (std::vector<std::size_t>{0, 1}));
}

// FNV-1a over every edge's topology and gradient bits: any change to the
// generator's sampling order or arithmetic shows up as a hash change.
std::uint64_t edge_list_fingerprint(const RouteGraph& g) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  auto mix_double = [&](double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  for (std::size_t ei = 0; ei < g.edge_count(); ++ei) {
    const Edge& e = g.edge(ei);
    mix(e.from);
    mix(e.to);
    mix_double(e.length_m);
    mix_double(e.grade_step_m);
    for (const double gr : e.grades) mix_double(gr);
  }
  return h;
}

TEST(GridCity, GoldenEdgeListFingerprint) {
  // Golden pin of the seeded generator. If this fails you changed the
  // city generator's output — deliberate changes must update the constant
  // (and expect every committed routing baseline to move with it).
  const RouteGraph g = make_grid_city(6, 6, 250.0, 3);
  EXPECT_EQ(edge_list_fingerprint(g), 3648188215861477139ULL);
  // And the fingerprint is actually sensitive: another seed differs.
  EXPECT_NE(edge_list_fingerprint(make_grid_city(6, 6, 250.0, 4)),
            3648188215861477139ULL);
}

TEST(GridCity, EveryEdgeHasAMirrorWithNegatedGrades) {
  const RouteGraph g = make_grid_city(5, 6, 220.0, 12);
  for (std::size_t ei = 0; ei < g.edge_count(); ++ei) {
    const Edge& e = g.edge(ei);
    // add_bidirectional emits forward/reverse adjacently.
    const std::size_t mi = (ei % 2 == 0) ? ei + 1 : ei - 1;
    const Edge& m = g.edge(mi);
    ASSERT_EQ(m.from, e.to);
    ASSERT_EQ(m.to, e.from);
    EXPECT_EQ(m.length_m, e.length_m);
    ASSERT_EQ(m.grades.size(), e.grades.size());
    for (std::size_t k = 0; k < e.grades.size(); ++k) {
      EXPECT_EQ(m.grades[k], -e.grades[e.grades.size() - 1 - k])
          << "edge " << ei << " sample " << k;
    }
  }
}

TEST(GridCity, FuelCostsAreStrictlyPositiveOnEveryEdge) {
  // The VSP idle floor keeps downhill fuel positive, so no cycle can have
  // negative fuel cost and Dijkstra's nonnegativity precondition holds for
  // every metric (this is also what the CSR freeze validates).
  const RouteGraph g = make_grid_city(6, 6, 250.0, 3);
  const double v = 40.0 / 3.6;
  for (std::size_t ei = 0; ei < g.edge_count(); ++ei) {
    EXPECT_GT(edge_cost_fuel(g.edge(ei), v), 0.0) << "edge " << ei;
  }
}

TEST(OsmCity, StructureDeterminismAndScale) {
  OsmCityConfig cfg;  // 52x52 defaults
  const RouteGraph g = make_osm_city(cfg);
  EXPECT_EQ(g.node_count(), cfg.rows * cfg.cols);
  EXPECT_GE(g.edge_count(), 10000u) << "tentpole floor: 10k+ directed edges";
  const RouteGraph h = make_osm_city(cfg);
  EXPECT_EQ(edge_list_fingerprint(g), edge_list_fingerprint(h));
  OsmCityConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_NE(edge_list_fingerprint(g),
            edge_list_fingerprint(make_osm_city(other)));
}

TEST(OsmCity, ClassesSpeedsAndStepsAreWellFormed) {
  OsmCityConfig cfg;
  cfg.rows = 13;
  cfg.cols = 13;
  const RouteGraph g = make_osm_city(cfg);
  bool saw_arterial = false;
  bool saw_residential = false;
  for (std::size_t ei = 0; ei < g.edge_count(); ++ei) {
    const Edge& e = g.edge(ei);
    ASSERT_GT(e.speed_mps, 0.0);
    const double covered =
        e.grade_step_m * static_cast<double>(e.grades.size());
    EXPECT_NEAR(covered, e.length_m, 1e-6 * e.length_m);
    saw_arterial |= e.road_class == road::RoadClass::kArterial;
    saw_residential |= e.road_class == road::RoadClass::kResidential;
  }
  EXPECT_TRUE(saw_arterial);
  EXPECT_TRUE(saw_residential);
}

TEST(OsmCity, ConnectedFromCornerSample) {
  OsmCityConfig cfg;
  cfg.rows = 9;
  cfg.cols = 9;
  const RouteGraph g = make_osm_city(cfg);
  for (std::size_t n = 0; n < g.node_count(); n += 7) {
    EXPECT_TRUE(g.shortest_path(0, n, edge_cost_distance).found)
        << "node " << n;
  }
}

TEST(GridCity, StructureAndDeterminism) {
  EXPECT_THROW(make_grid_city(1, 5, 200.0, 1), std::invalid_argument);
  const RouteGraph a = make_grid_city(4, 5, 200.0, 9);
  EXPECT_EQ(a.node_count(), 20u);
  // Streets: horizontal 4*(5-1)=16, vertical (4-1)*5=15, both directions.
  EXPECT_EQ(a.edge_count(), 2u * (16u + 15u));
  const RouteGraph b = make_grid_city(4, 5, 200.0, 9);
  EXPECT_DOUBLE_EQ(a.edge(7).grades.front(), b.edge(7).grades.front());
}

TEST(GridCity, TerrainIsConservativeAndHasASlope) {
  const std::size_t rows = 6;
  const std::size_t cols = 6;
  const RouteGraph g = make_grid_city(rows, cols, 250.0, 3);
  // Conservative field: any cycle's signed elevation change sums to ~0.
  // Walk the perimeter of the first block: (0,0)->(0,1)->(1,1)->(1,0)->(0,0).
  auto grade_of = [&](std::size_t from, std::size_t to) {
    for (std::size_t ei = 0; ei < g.edge_count(); ++ei) {
      const Edge& e = g.edge(ei);
      if (e.from == from && e.to == to) return e.grades.front();
    }
    ADD_FAILURE() << "edge " << from << "->" << to << " missing";
    return 0.0;
  };
  const double loop = std::sin(grade_of(0, 1)) + std::sin(grade_of(1, 1 + cols)) +
                      std::sin(grade_of(1 + cols, cols)) +
                      std::sin(grade_of(cols, 0));
  EXPECT_NEAR(loop * 250.0, 0.0, 1e-9);  // metres gained around the loop

  // The slope between the hilly corner and the flat corner produces real
  // grades somewhere, while the flat quadrant stays gentle.
  double max_grade = 0.0;
  double flat_quadrant = 0.0;
  int flat_n = 0;
  for (std::size_t ei = 0; ei < g.edge_count(); ++ei) {
    const Edge& e = g.edge(ei);
    max_grade = std::max(max_grade, std::abs(e.grades.front()));
    const std::size_t r = e.from / cols;
    const std::size_t c = e.from % cols;
    if (r >= rows - 2 && c >= cols - 2) {
      flat_quadrant += std::abs(e.grades.front());
      ++flat_n;
    }
  }
  ASSERT_GT(flat_n, 0);
  EXPECT_GT(max_grade, deg2rad(1.5));
  EXPECT_LT(flat_quadrant / flat_n, 0.5 * max_grade);
}

TEST(GridCity, AllNodesConnected) {
  const RouteGraph g = make_grid_city(5, 5, 200.0, 4);
  for (std::size_t n = 1; n < g.node_count(); ++n) {
    EXPECT_TRUE(g.shortest_path(0, n, edge_cost_distance).found)
        << "node " << n;
  }
}

TEST(RouteGraph, ManhattanDistanceOnGrid) {
  const RouteGraph g = make_grid_city(4, 4, 300.0, 5);
  // Corner to corner: (rows-1 + cols-1) blocks.
  const auto route = g.shortest_path(0, 15, edge_cost_distance);
  ASSERT_TRUE(route.found);
  EXPECT_NEAR(route.cost, 6.0 * 300.0, 1e-9);
}

}  // namespace
}  // namespace rge::planning
