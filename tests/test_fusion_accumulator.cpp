// Tests for the streaming FusionAccumulator and the cursor-based fusion
// hot paths.
//
// Contracts pinned here:
//  * FusionAccumulator::snapshot() on the overlap grid is bit-identical
//    to fuse_tracks_distance on the same tracks;
//  * the cursor-based fuse_tracks_{distance,time} are bit-identical to
//    the kept *_reference implementations (per-sample binary search) on
//    synthetic tracks AND on every scenario of the regression matrix;
//  * add_tracks_parallel is bit-reproducible across 1/2/8-thread pools;
//  * partial coverage, merge mismatch, and batch parity behave as
//    documented.
#include "core/track_fusion.hpp"

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_pool.hpp"
#include "testing/fault_injection.hpp"
#include "testing/scenario.hpp"

namespace rge::core {
namespace {

/// Deterministic synthetic gradient track covering s in [s0, s1].
GradeTrack synth_track(std::uint32_t id, double s0, double s1,
                       std::size_t n) {
  GradeTrack tr;
  tr.source = "synth-" + std::to_string(id);
  std::mt19937 rng(1234u + id);
  std::uniform_real_distribution<double> jitter(0.0, 1.0);
  tr.t.resize(n);
  tr.s.resize(n);
  tr.grade.resize(n);
  tr.grade_var.resize(n);
  tr.speed.resize(n);
  const double span = s1 - s0;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(n - 1);
    tr.s[i] = s0 + f * span;
    tr.t[i] = 40.0 * f * span / 15.0 + 0.01 * static_cast<double>(id);
    tr.grade[i] = 0.04 * std::sin(0.002 * tr.s[i]) +
                  0.003 * std::sin(0.11 * tr.s[i] + id);
    tr.grade_var[i] = 1e-5 + 1e-5 * jitter(rng);
    tr.speed[i] = 12.0 + 4.0 * std::sin(0.001 * tr.s[i] + 0.3 * id);
  }
  tr.validate();
  return tr;
}

std::vector<GradeTrack> synth_fleet(std::size_t n_tracks, double length_m) {
  std::vector<GradeTrack> tracks;
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> head(0.0, 0.02 * length_m);
  std::uniform_real_distribution<double> tail(0.95 * length_m, length_m);
  for (std::size_t v = 0; v < n_tracks; ++v) {
    const double s0 = head(rng);
    const double s1 = tail(rng);
    tracks.push_back(synth_track(static_cast<std::uint32_t>(v), s0, s1,
                                 400 + 17 * (v % 9)));
  }
  return tracks;
}

void expect_bit_identical(const GradeTrack& a, const GradeTrack& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.t[i], b.t[i]) << i;
    EXPECT_EQ(a.s[i], b.s[i]) << i;
    EXPECT_EQ(a.grade[i], b.grade[i]) << i;
    EXPECT_EQ(a.grade_var[i], b.grade_var[i]) << i;
    EXPECT_EQ(a.speed[i], b.speed[i]) << i;
  }
}

// ---- accumulator == batch fusion ---------------------------------------

TEST(FusionAccumulator, SnapshotMatchesFuseDistanceBitExact) {
  const auto tracks = synth_fleet(12, 8000.0);
  FusionConfig cfg;
  cfg.distance_step_m = 7.0;

  const GradeTrack fused = fuse_tracks_distance(tracks, cfg);
  const GradeTrack reference = fuse_tracks_distance_reference(tracks, cfg);
  expect_bit_identical(fused, reference);

  FusionAccumulator acc(make_overlap_grid(tracks, cfg), cfg);
  acc.add_tracks(tracks);
  EXPECT_EQ(acc.tracks_added(), tracks.size());
  expect_bit_identical(acc.snapshot(), fused);
}

TEST(FusionAccumulator, StreamingSnapshotsMatchReFusionAtEveryStep) {
  const auto tracks = synth_fleet(6, 3000.0);
  FusionConfig cfg;
  // Streamed adds must agree with re-fusing the prefix from scratch —
  // but only when both fuse on the same grid, so fix it to the full
  // fleet's overlap grid up front (the cloud's serving grid).
  FusionAccumulator acc(make_overlap_grid(tracks, cfg), cfg);
  for (std::size_t v = 0; v < tracks.size(); ++v) {
    acc.add_track(tracks[v]);
    const std::vector<GradeTrack> prefix(tracks.begin(),
                                         tracks.begin() + v + 1);
    FusionAccumulator from_scratch(acc.grid(), cfg);
    from_scratch.add_tracks(prefix);
    expect_bit_identical(acc.snapshot(), from_scratch.snapshot());
  }
}

TEST(FusionAccumulator, PartialCoverageTracksOnlyTouchTheirCells) {
  // Fixed city grid [0, 1000]; two trips covering different sub-spans.
  FusionGrid grid{0.0, 1000.0, 10.0, 101};
  FusionConfig cfg;
  FusionAccumulator acc(grid, cfg);
  acc.add_track(synth_track(1, 0.0, 500.0, 200));
  acc.add_track(synth_track(2, 300.0, 1000.0, 200));

  const auto cov = acc.coverage();
  ASSERT_EQ(cov.size(), grid.n);
  EXPECT_EQ(cov[0], 1u);                   // s=0: first trip only
  EXPECT_EQ(cov[40], 2u);                  // s=400: both
  EXPECT_EQ(cov[100], 1u);                 // s=1000: second trip only
  // Snapshot = the contiguous cells everyone covers: [300, 500].
  const GradeTrack fused = acc.snapshot();
  EXPECT_EQ(fused.s.front(), 300.0);
  EXPECT_EQ(fused.s.back(), 500.0);
  ASSERT_EQ(fused.size(), 21u);
}

TEST(FusionAccumulator, NoCommonCellThrows) {
  FusionGrid grid{0.0, 1000.0, 10.0, 101};
  FusionAccumulator acc{grid, FusionConfig{}};
  acc.add_track(synth_track(1, 0.0, 400.0, 100));
  acc.add_track(synth_track(2, 600.0, 1000.0, 100));
  EXPECT_THROW(acc.snapshot(), std::invalid_argument);
  FusionAccumulator empty{grid, FusionConfig{}};
  EXPECT_THROW(empty.snapshot(), std::invalid_argument);
}

TEST(FusionAccumulator, MergeMismatchThrows) {
  FusionGrid grid{0.0, 100.0, 5.0, 21};
  FusionGrid other_grid{0.0, 100.0, 10.0, 11};
  FusionConfig cfg;
  FusionConfig other_cfg;
  other_cfg.min_variance = 1e-6;
  FusionAccumulator a{grid, cfg};
  EXPECT_THROW(a.merge(FusionAccumulator{other_grid, cfg}),
               std::invalid_argument);
  EXPECT_THROW(a.merge(FusionAccumulator{grid, other_cfg}),
               std::invalid_argument);
  // Same grid + config merges fine.
  FusionAccumulator b{grid, cfg};
  b.add_track(synth_track(3, 0.0, 100.0, 64));
  a.merge(b);
  EXPECT_EQ(a.tracks_added(), 1u);
}

TEST(FusionAccumulator, ParallelAddDeterministicAcrossThreadCounts) {
  const auto tracks = synth_fleet(40, 5000.0);
  const FusionConfig cfg;
  const FusionGrid grid = make_overlap_grid(tracks, cfg);

  FusionAccumulator serial(grid, cfg);
  serial.add_tracks(tracks);
  const GradeTrack serial_snap = serial.snapshot();

  GradeTrack first;
  for (const std::size_t n_threads : {1u, 2u, 8u}) {
    runtime::ThreadPool pool(n_threads);
    FusionAccumulator acc(grid, cfg);
    acc.add_tracks_parallel(tracks, pool);
    EXPECT_EQ(acc.tracks_added(), tracks.size());
    const GradeTrack snap = acc.snapshot();
    if (n_threads == 1u) {
      first = snap;
    } else {
      // Fixed chunking => bit-identical regardless of pool size.
      expect_bit_identical(snap, first);
    }
    // Against serial adds the float grouping differs (chunk partials are
    // merged), so agreement is to rounding, not bitwise.
    ASSERT_EQ(snap.size(), serial_snap.size());
    for (std::size_t i = 0; i < snap.size(); ++i) {
      EXPECT_NEAR(snap.grade[i], serial_snap.grade[i], 1e-12);
      EXPECT_NEAR(snap.grade_var[i], serial_snap.grade_var[i], 1e-12);
    }
  }
}

// ---- sparse snapshots and the tile-splitting primitives ----------------

TEST(FusionAccumulator, SnapshotCoveredFullCoverageBitIdentical) {
  const auto tracks = synth_fleet(8, 4000.0);
  FusionConfig cfg;
  FusionAccumulator acc(make_overlap_grid(tracks, cfg), cfg);
  acc.add_tracks(tracks);

  // Every track covers every overlap-grid cell, so thresholding at the
  // full track count must reproduce the strict snapshot (and therefore
  // fuse_tracks_distance) bit for bit.
  const auto covered = acc.snapshot_covered(
      static_cast<std::uint32_t>(acc.tracks_added()));
  expect_bit_identical(covered.track, acc.snapshot());
  expect_bit_identical(covered.track, fuse_tracks_distance(tracks, cfg));
  ASSERT_EQ(covered.size(), acc.grid().n);
  for (std::size_t j = 0; j < covered.size(); ++j) {
    EXPECT_EQ(covered.cells[j], j);
    EXPECT_EQ(covered.coverage[j], acc.tracks_added());
  }
}

TEST(FusionAccumulator, SnapshotCoveredServesSparseCoverage) {
  // Two trips over disjoint sub-spans of a city grid: the strict
  // snapshot throws (no common cell), but the sparse snapshot serves
  // both covered runs with a gap between them.
  FusionGrid grid{0.0, 1000.0, 10.0, 101};
  FusionAccumulator acc{grid, FusionConfig{}};
  acc.add_track(synth_track(1, 0.0, 400.0, 100));     // cells 0..40
  acc.add_track(synth_track(2, 600.0, 1000.0, 100));  // cells 60..100
  EXPECT_THROW(acc.snapshot(), std::invalid_argument);

  const auto sparse = acc.snapshot_covered();
  ASSERT_EQ(sparse.size(), 82u);
  for (std::size_t j = 0; j < sparse.size(); ++j) {
    EXPECT_EQ(sparse.track.s[j], grid.at(sparse.cells[j])) << j;
    EXPECT_EQ(sparse.coverage[j], 1u) << j;
    if (j > 0) {
      EXPECT_GT(sparse.cells[j], sparse.cells[j - 1]) << j;
    }
  }
  EXPECT_EQ(sparse.cells.front(), 0u);
  EXPECT_EQ(sparse.cells.back(), 100u);

  // Nothing reaches coverage 2; that is an empty result, not an error.
  EXPECT_EQ(acc.snapshot_covered(2).size(), 0u);
  FusionAccumulator empty{grid, FusionConfig{}};
  EXPECT_EQ(empty.snapshot_covered().size(), 0u);
  EXPECT_THROW(acc.snapshot_covered(0), std::invalid_argument);
}

TEST(FusionAccumulator, SnapshotCoveredThresholdBoundaryIsInclusive) {
  // Staircase coverage: cells 0..30 seen by 3 tracks, 31..60 by 2, 61..100
  // by 1. min_coverage == k must include every cell with coverage >= k and
  // exclude coverage k-1 exactly — an off-by-one here silently serves (or
  // drops) an entire tile edge.
  FusionGrid grid{0.0, 1000.0, 10.0, 101};
  FusionAccumulator acc{grid, FusionConfig{}};
  acc.add_track(synth_track(1, 0.0, 1000.0, 400));  // cells 0..100
  acc.add_track(synth_track(2, 0.0, 600.0, 300));   // cells 0..60
  acc.add_track(synth_track(3, 0.0, 300.0, 200));   // cells 0..30

  const auto want_cells = [&](std::uint32_t min_cov, std::size_t first,
                              std::size_t last) {
    const auto snap = acc.snapshot_covered(min_cov);
    ASSERT_EQ(snap.size(), last - first + 1) << "min_coverage=" << min_cov;
    EXPECT_EQ(snap.cells.front(), first);
    EXPECT_EQ(snap.cells.back(), last);
    for (std::size_t j = 0; j < snap.size(); ++j) {
      EXPECT_GE(snap.coverage[j], min_cov) << j;
    }
  };
  want_cells(1, 0, 100);  // everything covered at least once
  want_cells(2, 0, 60);   // coverage-1 tail excluded, boundary cell 60 kept
  want_cells(3, 0, 30);   // boundary cell 30 kept at exactly 3
  EXPECT_EQ(acc.snapshot_covered(4).size(), 0u);  // above max: empty, no throw

  // The served values for a thresholded cell are bit-identical to the
  // unthresholded sparse snapshot at the same cell — thresholding filters,
  // it never refuses.
  const auto all = acc.snapshot_covered(1);
  const auto top = acc.snapshot_covered(3);
  for (std::size_t j = 0; j < top.size(); ++j) {
    EXPECT_EQ(top.cells[j], all.cells[j]);
    EXPECT_EQ(top.coverage[j], all.coverage[j]);
    EXPECT_EQ(top.track.grade[j], all.track.grade[j]) << j;
    EXPECT_EQ(top.track.grade_var[j], all.track.grade_var[j]) << j;
    EXPECT_EQ(top.track.s[j], all.track.s[j]) << j;
  }
}

TEST(FusionAccumulator, AddTrackCellsSplitBitIdenticalToUnsplitAdd) {
  FusionGrid grid{0.0, 1000.0, 10.0, 101};
  const GradeTrack tr = synth_track(7, 123.0, 881.0, 300);

  FusionAccumulator whole{grid, FusionConfig{}};
  whole.add_track(tr);
  FusionAccumulator split{grid, FusionConfig{}};
  split.add_track_cells(tr, 0, 35);   // "tile" 0, mostly before the track
  split.add_track_cells(tr, 35, 70);  // interior boundary mid-track
  split.add_track_cells(tr, 70, 999);  // cell_end clamps to the grid

  const auto a = whole.snapshot_covered();
  const auto b = split.snapshot_covered();
  EXPECT_EQ(a.cells, b.cells);
  EXPECT_EQ(a.coverage, b.coverage);
  expect_bit_identical(a.track, b.track);
  // tracks_added counts sub-range applications, not distinct tracks.
  EXPECT_EQ(split.tracks_added(), 3u);

  EXPECT_THROW(split.add_track_cells(tr, 5, 2), std::invalid_argument);
}

TEST(FusionAccumulator, MergeErrorNamesMismatchedField) {
  const FusionGrid grid{0.0, 100.0, 5.0, 21};
  const FusionConfig cfg;
  const auto expect_names = [&](const FusionGrid& g2, const FusionConfig& c2,
                                const char* field) {
    FusionAccumulator a{grid, cfg};
    const FusionAccumulator b{g2, c2};
    try {
      a.merge(b);
      FAIL() << "merge accepted a " << field << " mismatch";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  FusionGrid step = grid;
  step.step = 2.5;
  expect_names(step, cfg, "spacing");
  FusionGrid origin = grid;
  origin.lo = 5.0;
  expect_names(origin, cfg, "origin");
  FusionGrid length = grid;
  length.hi = 200.0;
  length.n = 41;
  expect_names(length, cfg, "length");
  FusionConfig min_var = cfg;
  min_var.min_variance = 1e-6;
  expect_names(grid, min_var, "min_variance");
  FusionConfig step_cfg = cfg;
  step_cfg.distance_step_m = 10.0;
  expect_names(grid, step_cfg, "distance_step_m");
}

TEST(FusionAccumulator, MergeCellsSeedsOnlyTheRequestedRange) {
  FusionGrid grid{0.0, 1000.0, 10.0, 101};
  FusionAccumulator full{grid, FusionConfig{}};
  full.add_track(synth_track(11, 0.0, 1000.0, 400));

  // Seed two halves into separate accumulators, then merge them back:
  // the round trip must be bit-identical (tiles partition cells).
  FusionAccumulator lo{grid, FusionConfig{}};
  FusionAccumulator hi{grid, FusionConfig{}};
  lo.merge_cells(full, 0, 50);
  hi.merge_cells(full, 50, grid.n);
  FusionAccumulator rebuilt{grid, FusionConfig{}};
  rebuilt.merge(lo);
  rebuilt.merge(hi);

  const auto a = full.snapshot_covered();
  const auto b = rebuilt.snapshot_covered();
  EXPECT_EQ(a.cells, b.cells);
  EXPECT_EQ(a.coverage, b.coverage);
  expect_bit_identical(a.track, b.track);

  const auto lo_snap = lo.snapshot_covered();
  ASSERT_FALSE(lo_snap.cells.empty());
  EXPECT_LT(lo_snap.cells.back(), 50u);
}

// ---- cursor paths vs reference -----------------------------------------

TEST(CursorParity, DistanceFusionMatchesReferenceOnSynthetics) {
  for (const std::size_t n_tracks : {1u, 2u, 5u, 17u}) {
    const auto tracks = synth_fleet(n_tracks, 2500.0);
    FusionConfig cfg;
    cfg.distance_step_m = 3.0;
    expect_bit_identical(fuse_tracks_distance(tracks, cfg),
                         fuse_tracks_distance_reference(tracks, cfg));
  }
}

TEST(CursorParity, TimeFusionMatchesReferenceOnSynthetics) {
  const auto tracks = synth_fleet(4, 2000.0);
  for (std::size_t ref = 0; ref < tracks.size(); ++ref) {
    expect_bit_identical(fuse_tracks_time(tracks, ref),
                         fuse_tracks_time_reference(tracks, ref));
  }
}

TEST(CursorParity, BatchFusionBitIdenticalToSerial) {
  const auto tracks = synth_fleet(9, 6000.0);
  const FusionConfig cfg;
  const GradeTrack serial = fuse_tracks_distance(tracks, cfg);
  for (const std::size_t n_threads : {1u, 2u, 8u}) {
    runtime::ThreadPool pool(n_threads);
    expect_bit_identical(fuse_tracks_distance_batch(tracks, cfg, pool),
                         serial);
  }
}

TEST(CursorParity, MatchesReferenceOnEveryMatrixScenario) {
  // The full regression matrix: real pipeline tracks (EKF variances, GPS
  // faults, multi-trip uploads), not synthetics. The cursor rewrite must
  // be invisible — bit-for-bit — on all of them.
  const testing::FaultSpec no_fault;
  std::size_t checked = 0;
  for (const auto& spec : testing::scenario_matrix()) {
    const auto world = testing::build_world(spec);
    const auto run = testing::run_scenario(spec, world, no_fault, 1);
    if (run.rejected || run.tracks.size() < 2) continue;
    ++checked;

    expect_bit_identical(fuse_tracks_time(run.tracks),
                         fuse_tracks_time_reference(run.tracks));
    try {
      const GradeTrack dist = fuse_tracks_distance(run.tracks);
      expect_bit_identical(dist,
                           fuse_tracks_distance_reference(run.tracks));
      FusionAccumulator acc(make_overlap_grid(run.tracks, FusionConfig{}),
                            FusionConfig{});
      acc.add_tracks(run.tracks);
      expect_bit_identical(acc.snapshot(), dist);
    } catch (const std::invalid_argument&) {
      // Some per-source track sets may not overlap in distance; the
      // time-domain parity above still covers the scenario.
    }
  }
  // The committed matrix is >= 10 scenarios; parity must have actually
  // run on them, not silently skipped.
  EXPECT_GE(checked, 10u);
}

}  // namespace
}  // namespace rge::core
