// GradeEkfBatch parity vs N independent scalar GradeEkf instances.
//
// Assertion policy (DESIGN.md §8): with RGE_SIMD=OFF every comparison is
// bit-exact (==); with RGE_SIMD=ON only predict carries the pinned kernel
// tolerance (polynomial sin/cos + FMA contraction), so state comparisons
// after predicts use expect_parity while update-only sequences and the
// structural properties (masking, permutation invariance) stay bit-exact
// in every build mode.
#include "core/grade_ekf_batch.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "math/rng.hpp"
#include "math/simd.hpp"

namespace rge::core {
namespace {

void expect_parity(double batch, double scalar) {
  if constexpr (math::simd_enabled()) {
    EXPECT_NEAR(batch, scalar, 1e-9 * std::max(1.0, std::abs(scalar)));
  } else {
    EXPECT_EQ(batch, scalar);
  }
}

struct LaneInput {
  double f = 0.0;
  double dt = 0.0;
};

TEST(GradeEkfBatch, PredictUpdateParityVsScalarFleet) {
  const vehicle::VehicleParams params{};
  const GradeEkfConfig cfg{};
  constexpr std::size_t kLanes = 13;  // not a lane-width multiple
  GradeEkfBatch batch(kLanes, params, cfg);
  std::vector<GradeEkf> fleet;
  math::Rng rng(41);
  for (std::size_t l = 0; l < kLanes; ++l) {
    const double v0 = rng.uniform(3.0, 25.0);
    const double th0 = rng.uniform(-0.08, 0.08);
    batch.seed(l, v0, th0);
    fleet.emplace_back(params, cfg, v0, th0);
  }
  std::vector<double> f(kLanes);
  std::vector<double> dt(kLanes);
  for (int step = 0; step < 400; ++step) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      f[l] = rng.uniform(-3.0, 3.0);
      dt[l] = 0.02;
    }
    batch.predict(f, dt);
    for (std::size_t l = 0; l < kLanes; ++l) fleet[l].predict(f[l], dt[l]);
    if (step % 9 == 4) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        // Occasional far-off measurement exercises the NIS gate.
        const double v_meas = (step % 27 == 4)
                                  ? fleet[l].speed() + 200.0
                                  : fleet[l].speed() + rng.gaussian(0.0, 0.5);
        const bool ok_b = batch.update_velocity(l, v_meas, 0.25);
        const bool ok_s = fleet[l].update_velocity(v_meas, 0.25);
        EXPECT_EQ(ok_b, ok_s) << "lane " << l << " step " << step;
      }
    }
    for (std::size_t l = 0; l < kLanes; ++l) {
      expect_parity(batch.speed(l), fleet[l].speed());
      expect_parity(batch.grade(l), fleet[l].grade());
      expect_parity(batch.speed_variance(l), fleet[l].speed_variance());
      expect_parity(batch.grade_variance(l), fleet[l].grade_variance());
    }
  }
}

TEST(GradeEkfBatch, UpdateOnlySequenceBitExactEveryMode) {
  // update_velocity is inline in the header (compiled with the caller's
  // flags), so with no predicts in between it is bit-identical to the
  // scalar filter even in SIMD builds.
  const vehicle::VehicleParams params{};
  GradeEkfConfig cfg;
  cfg.gate_nis = 9.0;
  GradeEkfBatch batch(3, params, cfg);
  std::vector<GradeEkf> fleet;
  math::Rng rng(42);
  for (std::size_t l = 0; l < 3; ++l) {
    const double v0 = 10.0 + static_cast<double>(l);
    batch.seed(l, v0);
    fleet.emplace_back(params, cfg, v0, 0.0);
  }
  for (int k = 0; k < 60; ++k) {
    for (std::size_t l = 0; l < 3; ++l) {
      const double v = (k % 13 == 7) ? 500.0 : 10.0 + rng.gaussian(0.0, 1.0);
      const double r = rng.uniform(0.05, 0.5);
      EXPECT_EQ(batch.update_velocity(l, v, r),
                fleet[l].update_velocity(v, r));
      EXPECT_EQ(batch.speed(l), fleet[l].speed());
      EXPECT_EQ(batch.grade(l), fleet[l].grade());
      EXPECT_EQ(batch.speed_variance(l), fleet[l].speed_variance());
      EXPECT_EQ(batch.grade_variance(l), fleet[l].grade_variance());
    }
  }
}

TEST(GradeEkfBatch, MaskedAndUnseededLanesFreezeBitExact) {
  const vehicle::VehicleParams params{};
  GradeEkfBatch batch(4, params, GradeEkfConfig{});
  batch.seed(0, 12.0, 0.01);
  batch.seed(2, 20.0, -0.02);
  // Lane 1 and 3 never seeded.
  EXPECT_TRUE(batch.seeded(0));
  EXPECT_FALSE(batch.seeded(1));

  GradeEkfBatch ref(4, params, GradeEkfConfig{});
  ref.seed(0, 12.0, 0.01);
  ref.seed(2, 20.0, -0.02);

  const std::vector<double> f = {1.0, 2.0, -1.5, 0.5};
  const std::vector<double> dt = {0.02, 0.02, 0.02, 0.02};
  const std::vector<std::uint8_t> mask = {1, 1, 0, 1};
  const double frozen_v = batch.speed(2);
  const double frozen_p11 = batch.grade_variance(2);
  for (int k = 0; k < 50; ++k) {
    batch.predict(f, dt, mask);
    ref.predict(f, dt);  // unmasked reference
  }
  // Masked-off seeded lane froze bit-exactly.
  EXPECT_EQ(batch.speed(2), frozen_v);
  EXPECT_EQ(batch.grade_variance(2), frozen_p11);
  // Unseeded lanes never move in either batch.
  EXPECT_EQ(batch.speed(1), 0.0);
  EXPECT_EQ(batch.grade(3), 0.0);
  // The active masked lane matches the unmasked reference bit-for-bit:
  // masking is a pure select, not a different code path.
  EXPECT_EQ(batch.speed(0), ref.speed(0));
  EXPECT_EQ(batch.grade(0), ref.grade(0));
  EXPECT_EQ(batch.grade_variance(0), ref.grade_variance(0));

  // dt == 0 is GradeEkf::predict's early-out: nothing moves.
  const double before = batch.speed(0);
  const std::vector<double> dt0(4, 0.0);
  batch.predict(f, dt0);
  EXPECT_EQ(batch.speed(0), before);
}

TEST(GradeEkfBatch, LanePermutationInvarianceBitExact) {
  // Shuffling vehicles across lanes must leave every per-vehicle output
  // bit-identical in EVERY build mode: lanes are padded, independent, and
  // run identical elementwise code (DESIGN.md §8 determinism rule).
  const vehicle::VehicleParams params{};
  constexpr std::size_t kLanes = 11;
  math::Rng rng(43);
  std::vector<double> v0(kLanes);
  std::vector<double> th0(kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    v0[l] = rng.uniform(5.0, 30.0);
    th0[l] = rng.uniform(-0.1, 0.1);
  }
  std::vector<std::size_t> perm(kLanes);
  std::iota(perm.begin(), perm.end(), 0u);
  std::reverse(perm.begin(), perm.end());
  std::swap(perm[0], perm[5]);

  GradeEkfBatch a(kLanes, params, GradeEkfConfig{});
  GradeEkfBatch b(kLanes, params, GradeEkfConfig{});
  for (std::size_t l = 0; l < kLanes; ++l) {
    a.seed(l, v0[l], th0[l]);
    b.seed(perm[l], v0[l], th0[l]);
  }
  std::vector<double> fa(kLanes);
  std::vector<double> dta(kLanes);
  std::vector<double> fb(kLanes);
  std::vector<double> dtb(kLanes);
  for (int step = 0; step < 300; ++step) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      fa[l] = rng.uniform(-2.0, 2.0);
      dta[l] = rng.uniform(0.01, 0.03);
      fb[perm[l]] = fa[l];
      dtb[perm[l]] = dta[l];
    }
    a.predict(fa, dta);
    b.predict(fb, dtb);
    if (step % 11 == 3) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        const double v = v0[l] + rng.gaussian(0.0, 1.0);
        EXPECT_EQ(a.update_velocity(l, v, 0.16),
                  b.update_velocity(perm[l], v, 0.16));
      }
    }
    for (std::size_t l = 0; l < kLanes; ++l) {
      ASSERT_EQ(a.speed(l), b.speed(perm[l])) << "step " << step;
      ASSERT_EQ(a.grade(l), b.grade(perm[l])) << "step " << step;
      ASSERT_EQ(a.grade_variance(l), b.grade_variance(perm[l]))
          << "step " << step;
    }
  }
}

TEST(GradeEkfBatch, ReseedResetsLane) {
  const vehicle::VehicleParams params{};
  GradeEkfBatch batch(2, params, GradeEkfConfig{});
  batch.seed(0, 10.0, 0.05);
  const std::vector<double> f = {2.0, 0.0};
  const std::vector<double> dt = {0.02, 0.02};
  for (int k = 0; k < 20; ++k) batch.predict(f, dt);
  batch.seed(0, 10.0, 0.05);
  const GradeEkf fresh(params, GradeEkfConfig{}, 10.0, 0.05);
  EXPECT_EQ(batch.speed(0), fresh.speed());
  EXPECT_EQ(batch.grade(0), fresh.grade());
  EXPECT_EQ(batch.speed_variance(0), fresh.speed_variance());
  EXPECT_EQ(batch.grade_variance(0), fresh.grade_variance());
}

TEST(GradeEkfBatch, InputValidation) {
  const vehicle::VehicleParams params{};
  GradeEkfBatch batch(3, params, GradeEkfConfig{});
  EXPECT_THROW(batch.seed(3, 1.0), std::out_of_range);
  const std::vector<double> short_span = {1.0};
  const std::vector<double> dt = {0.02, 0.02, 0.02};
  EXPECT_THROW(batch.predict(short_span, dt), std::invalid_argument);
  const std::vector<double> f = {1.0, 1.0, 1.0};
  const std::vector<std::uint8_t> short_mask = {1};
  EXPECT_THROW(batch.predict(f, dt, short_mask), std::invalid_argument);
}

}  // namespace
}  // namespace rge::core
