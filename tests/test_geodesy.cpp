// Unit tests for geodesy helpers.
#include "math/geodesy.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"

namespace rge::math {
namespace {

const GeoPoint kCville{38.0293, -78.4767, 180.0};

TEST(LocalTangentPlane, OriginMapsToZero) {
  const LocalTangentPlane ltp(kCville);
  const Enu e = ltp.to_enu(kCville);
  EXPECT_NEAR(e.east_m, 0.0, 1e-9);
  EXPECT_NEAR(e.north_m, 0.0, 1e-9);
  EXPECT_NEAR(e.up_m, 0.0, 1e-9);
}

TEST(LocalTangentPlane, RoundTrip) {
  const LocalTangentPlane ltp(kCville);
  const Enu e{1234.5, -987.6, 42.0};
  const GeoPoint p = ltp.to_geodetic(e);
  const Enu back = ltp.to_enu(p);
  EXPECT_NEAR(back.east_m, e.east_m, 1e-6);
  EXPECT_NEAR(back.north_m, e.north_m, 1e-6);
  EXPECT_NEAR(back.up_m, e.up_m, 1e-9);
}

TEST(LocalTangentPlane, NorthIncreasesLatitude) {
  const LocalTangentPlane ltp(kCville);
  const GeoPoint p = ltp.to_geodetic(Enu{0.0, 1000.0, 0.0});
  EXPECT_GT(p.latitude_deg, kCville.latitude_deg);
  EXPECT_NEAR(p.longitude_deg, kCville.longitude_deg, 1e-12);
  // 1 km north ~ 1/111.2 degrees of latitude.
  EXPECT_NEAR(p.latitude_deg - kCville.latitude_deg, 1.0 / 111.195, 1e-4);
}

TEST(Haversine, KnownDistance) {
  // One degree of latitude is ~111.2 km.
  const GeoPoint a{38.0, -78.0, 0.0};
  const GeoPoint b{39.0, -78.0, 0.0};
  EXPECT_NEAR(haversine_distance_m(a, b), 111195.0, 150.0);
  EXPECT_DOUBLE_EQ(haversine_distance_m(a, a), 0.0);
}

TEST(Distance3d, IncludesAltitude) {
  const GeoPoint a{38.0, -78.0, 0.0};
  GeoPoint b = a;
  b.altitude_m = 30.0;
  EXPECT_NEAR(distance_3d_m(a, b), 30.0, 1e-9);
}

TEST(Bearing, CardinalDirections) {
  const GeoPoint origin{38.0, -78.0, 0.0};
  const GeoPoint north{38.01, -78.0, 0.0};
  const GeoPoint east{38.0, -77.99, 0.0};
  const GeoPoint south{37.99, -78.0, 0.0};
  EXPECT_NEAR(initial_bearing_rad(origin, north), 0.0, 1e-6);
  EXPECT_NEAR(initial_bearing_rad(origin, east), kPi / 2.0, 1e-3);
  EXPECT_NEAR(initial_bearing_rad(origin, south), kPi, 1e-6);
}

TEST(HeadingFromEast, Conventions) {
  const GeoPoint origin{38.0, -78.0, 0.0};
  const GeoPoint east{38.0, -77.99, 0.0};
  const GeoPoint north{38.01, -78.0, 0.0};
  EXPECT_NEAR(heading_from_east_rad(origin, east), 0.0, 1e-3);
  EXPECT_NEAR(heading_from_east_rad(origin, north), kPi / 2.0, 1e-6);
}

TEST(Destination, RoundTripWithBearing) {
  const GeoPoint start{38.0293, -78.4767, 120.0};
  const double bearing = deg2rad(37.0);
  const GeoPoint end = destination(start, bearing, 5000.0);
  EXPECT_NEAR(haversine_distance_m(start, end), 5000.0, 0.5);
  EXPECT_NEAR(initial_bearing_rad(start, end), bearing, 1e-3);
  EXPECT_DOUBLE_EQ(end.altitude_m, 120.0);
}

TEST(PolylineLength, SumsSegments) {
  const GeoPoint a{38.0, -78.0, 0.0};
  const GeoPoint b = destination(a, 0.0, 1000.0);
  const GeoPoint c = destination(b, kPi / 2.0, 500.0);
  const double len = polyline_length_m({a, b, c});
  EXPECT_NEAR(len, 1500.0, 1.0);
  EXPECT_DOUBLE_EQ(polyline_length_m({a}), 0.0);
  EXPECT_DOUBLE_EQ(polyline_length_m({}), 0.0);
}

TEST(LocalTangentPlane, ConsistentWithHaversineAtCityScale) {
  const LocalTangentPlane ltp(kCville);
  const GeoPoint p = ltp.to_geodetic(Enu{3000.0, -4000.0, 0.0});
  // ENU distance 5 km; haversine should agree within ~1 m at this scale.
  EXPECT_NEAR(haversine_distance_m(kCville, p), 5000.0, 2.0);
}

}  // namespace
}  // namespace rge::math
