// Unit tests for the trip simulator.
#include "vehicle/trip.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"
#include "road/network.hpp"

namespace rge::vehicle {
namespace {

using math::deg2rad;

road::Road two_lane_road() {
  road::RoadBuilder b("two-lane");
  b.add_straight(3000.0, deg2rad(1.0), 2);
  return b.build();
}

TEST(Trip, ConfigValidation) {
  const road::Road r = two_lane_road();
  TripConfig c;
  c.sample_rate_hz = 0.0;
  EXPECT_THROW(simulate_trip(r, c), std::invalid_argument);
  c = TripConfig{};
  c.max_accel = -1.0;
  EXPECT_THROW(simulate_trip(r, c), std::invalid_argument);
  c = TripConfig{};
  c.lane_changes_per_km = -1.0;
  EXPECT_THROW(simulate_trip(r, c), std::invalid_argument);
}

TEST(Trip, CoversWholeRoad) {
  const road::Road r = two_lane_road();
  TripConfig c;
  c.seed = 1;
  const Trip trip = simulate_trip(r, c);
  ASSERT_FALSE(trip.states.empty());
  EXPECT_GE(trip.distance_m(), r.length_m() - 1.0);
  EXPECT_NEAR(trip.dt, 1.0 / c.sample_rate_hz, 1e-12);
  // Timestamps advance uniformly.
  for (std::size_t i = 1; i < 100; ++i) {
    EXPECT_NEAR(trip.states[i].t - trip.states[i - 1].t, trip.dt, 1e-9);
  }
}

TEST(Trip, SpeedStaysWithinBounds) {
  const road::Road r = two_lane_road();
  TripConfig c;
  c.seed = 2;
  const Trip trip = simulate_trip(r, c);
  for (const auto& st : trip.states) {
    EXPECT_GE(st.speed, 0.0);
    EXPECT_LE(st.speed, c.cruise_speed_mps + 6.0 * c.target_speed_sigma);
    EXPECT_GE(st.accel, c.max_decel - 1e-9);
    EXPECT_LE(st.accel, c.max_accel + 1e-9);
  }
}

TEST(Trip, Deterministic) {
  const road::Road r = two_lane_road();
  TripConfig c;
  c.seed = 3;
  const Trip a = simulate_trip(r, c);
  const Trip b = simulate_trip(r, c);
  ASSERT_EQ(a.states.size(), b.states.size());
  EXPECT_DOUBLE_EQ(a.states.back().speed, b.states.back().speed);
  EXPECT_EQ(a.lane_changes.size(), b.lane_changes.size());
}

TEST(Trip, LaneChangesHappenOnMultiLaneRoad) {
  const road::Road r = two_lane_road();
  TripConfig c;
  c.seed = 4;
  c.lane_changes_per_km = 5.0;
  const Trip trip = simulate_trip(r, c);
  EXPECT_GE(trip.lane_changes.size(), 2u);
  for (const auto& lc : trip.lane_changes) {
    EXPECT_GT(lc.end_t, lc.start_t);
    EXPECT_GE(lc.peak_rate, 0.1);
    EXPECT_GT(lc.speed, 0.0);
  }
  // Lane index stays within the two lanes.
  for (const auto& st : trip.states) {
    EXPECT_GE(st.lane, 0);
    EXPECT_LE(st.lane, 1);
  }
}

TEST(Trip, NoLaneChangesOnSingleLaneRoad) {
  road::RoadBuilder b("one-lane");
  b.add_straight(2000.0, 0.0, 1);
  TripConfig c;
  c.seed = 5;
  c.lane_changes_per_km = 10.0;
  const Trip trip = simulate_trip(b.build(), c);
  EXPECT_TRUE(trip.lane_changes.empty());
  for (const auto& st : trip.states) {
    EXPECT_DOUBLE_EQ(st.steer_rate, 0.0);
    EXPECT_EQ(st.lane, 0);
  }
}

TEST(Trip, LaneChangesCanBeDisabled) {
  const road::Road r = two_lane_road();
  TripConfig c;
  c.seed = 6;
  c.allow_lane_changes = false;
  const Trip trip = simulate_trip(r, c);
  EXPECT_TRUE(trip.lane_changes.empty());
}

TEST(Trip, AlphaReturnsToZeroAfterLaneChange) {
  const road::Road r = two_lane_road();
  TripConfig c;
  c.seed = 7;
  c.lane_changes_per_km = 5.0;
  const Trip trip = simulate_trip(r, c);
  ASSERT_FALSE(trip.lane_changes.empty());
  const auto& lc = trip.lane_changes.front();
  // Find a state shortly after the maneuver end.
  for (const auto& st : trip.states) {
    if (st.t > lc.end_t + 0.5 && st.t < lc.end_t + 1.0) {
      EXPECT_NEAR(st.alpha, 0.0, 1e-6);
      EXPECT_FALSE(st.in_lane_change);
    }
  }
}

TEST(Trip, LateralOffsetMovesOneLane) {
  const road::Road r = two_lane_road();
  TripConfig c;
  c.seed = 8;
  c.lane_changes_per_km = 4.0;
  const Trip trip = simulate_trip(r, c);
  ASSERT_FALSE(trip.lane_changes.empty());
  const auto& lc = trip.lane_changes.front();
  double before = 0.0;
  double after = 0.0;
  for (const auto& st : trip.states) {
    if (st.t <= lc.start_t) before = st.lateral_offset;
    if (st.t <= lc.end_t + 0.1) after = st.lateral_offset;
  }
  const double moved = std::abs(after - before);
  EXPECT_NEAR(moved, kLaneWidthM, 0.4);
}

TEST(Trip, GradeMatchesRoad) {
  road::RoadBuilder b("graded");
  b.add_straight(500.0, deg2rad(4.0));
  b.add_straight(500.0, deg2rad(-2.0));
  const road::Road r = b.build();
  TripConfig c;
  c.seed = 9;
  const Trip trip = simulate_trip(r, c);
  for (const auto& st : trip.states) {
    EXPECT_NEAR(st.grade, r.grade_at(st.s), 1e-9);
    EXPECT_NEAR(st.altitude, r.elevation_at(st.s), 1e-9);
  }
}

TEST(Trip, YawRateReflectsCurvature) {
  road::RoadBuilder b("curve");
  b.add_section(road::SectionSpec{600.0, 0.0, 0.0, deg2rad(90.0), 1});
  const road::Road r = b.build();
  TripConfig c;
  c.seed = 10;
  c.allow_lane_changes = false;
  const Trip trip = simulate_trip(r, c);
  // In steady state yaw rate = curvature * speed.
  const auto& mid = trip.states[trip.states.size() / 2];
  EXPECT_NEAR(mid.yaw_rate, r.curvature_at(mid.s) * mid.speed, 1e-6);
}

TEST(Trip, StopsWhenConfigured) {
  const road::Road r = two_lane_road();
  TripConfig c;
  c.seed = 11;
  c.stops_per_km = 3.0;
  c.allow_lane_changes = false;
  const Trip trip = simulate_trip(r, c);
  bool stopped_at_least_once = false;
  for (const auto& st : trip.states) {
    if (st.stopped) {
      stopped_at_least_once = true;
      EXPECT_DOUBLE_EQ(st.speed, 0.0);
    }
  }
  EXPECT_TRUE(stopped_at_least_once);
  EXPECT_GE(trip.distance_m(), r.length_m() - 1.0);  // still finishes
}

TEST(Trip, LongitudinalSpeedProjection) {
  VehicleState st;
  st.speed = 10.0;
  st.alpha = deg2rad(10.0);
  EXPECT_NEAR(st.longitudinal_speed(), 10.0 * std::cos(deg2rad(10.0)),
              1e-12);
}

TEST(Trip, CruiseSpeedRoughlyTracked) {
  road::RoadBuilder b("flat");
  b.add_straight(5000.0, 0.0, 1);
  TripConfig c;
  c.seed = 12;
  c.cruise_speed_mps = 14.0;
  const Trip trip = simulate_trip(b.build(), c);
  double mean_v = 0.0;
  for (const auto& st : trip.states) mean_v += st.speed;
  mean_v /= static_cast<double>(trip.states.size());
  EXPECT_NEAR(mean_v, 14.0, 2.0);
}

}  // namespace
}  // namespace rge::vehicle
