// Unit tests for steering-rate bump extraction.
#include "core/bump.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "math/angles.hpp"
#include "vehicle/lane_change.hpp"

namespace rge::core {
namespace {

// Build a sampled profile from a callable at the given rate.
template <typename F>
void sample_profile(F f, double duration, double rate,
                    std::vector<double>& t, std::vector<double>& w) {
  t.clear();
  w.clear();
  const double dt = 1.0 / rate;
  for (double x = 0.0; x <= duration; x += dt) {
    t.push_back(x);
    w.push_back(f(x));
  }
}

TEST(Bump, SizeMismatchThrows) {
  const std::vector<double> t{0.0, 1.0};
  const std::vector<double> w{0.0};
  EXPECT_THROW(extract_bumps(t, w), std::invalid_argument);
}

TEST(Bump, FlatProfileHasNoBumps) {
  std::vector<double> t;
  std::vector<double> w;
  sample_profile([](double) { return 0.005; }, 10.0, 10.0, t, w);
  // Values inside the zero band never open an excursion.
  EXPECT_TRUE(extract_bumps(t, w).empty());
}

TEST(Bump, SinglePositiveBump) {
  std::vector<double> t;
  std::vector<double> w;
  sample_profile(
      [](double x) {
        return x >= 2.0 && x <= 5.0
                   ? 0.15 * std::sin(math::kPi * (x - 2.0) / 3.0)
                   : 0.0;
      },
      10.0, 20.0, t, w);
  const auto bumps = extract_bumps(t, w);
  ASSERT_EQ(bumps.size(), 1u);
  const Bump& b = bumps[0];
  EXPECT_EQ(b.sign, 1);
  EXPECT_NEAR(b.delta, 0.15, 0.01);
  EXPECT_NEAR(b.t_peak, 3.5, 0.2);
  EXPECT_GT(b.t_end, b.t_start);
  // For a half-sine, time above 0.7*peak is ~0.506 of the width.
  EXPECT_NEAR(b.duration_above, 0.506 * 3.0, 0.2);
}

TEST(Bump, OppositePairExtractedInOrder) {
  std::vector<double> t;
  std::vector<double> w;
  const vehicle::LaneChangeManeuver m(vehicle::LaneChangeDirection::kLeft,
                                      0.15, 10.0);
  sample_profile([&](double x) { return m.steering_rate(x); },
                 m.duration_s(), 50.0, t, w);
  const auto bumps = extract_bumps(t, w);
  ASSERT_EQ(bumps.size(), 2u);
  EXPECT_EQ(bumps[0].sign, 1);
  EXPECT_EQ(bumps[1].sign, -1);
  EXPECT_LT(bumps[0].t_end, bumps[1].t_start + 1e-9);
  EXPECT_NEAR(bumps[0].delta, 0.15, 0.01);
  EXPECT_NEAR(bumps[1].delta, 0.15, 0.01);
}

TEST(Bump, QualificationThresholds) {
  Bump b;
  b.delta = 0.12;
  b.duration_above = 1.0;
  BumpThresholds thr;
  thr.delta_min = 0.10;
  thr.t_min = 0.55;
  EXPECT_TRUE(qualifies(b, thr));
  b.delta = 0.09;
  EXPECT_FALSE(qualifies(b, thr));
  b.delta = 0.12;
  b.duration_above = 0.3;
  EXPECT_FALSE(qualifies(b, thr));
}

TEST(Bump, ZeroBandMergesJitter) {
  // A bump interrupted by tiny jitter around zero should not split when the
  // jitter stays inside the zero band.
  std::vector<double> t;
  std::vector<double> w;
  sample_profile(
      [](double x) {
        if (x < 1.0 || x > 5.0) return 0.0;
        const double base = 0.2 * std::sin(math::kPi * (x - 1.0) / 4.0);
        return std::max(base, 0.021);  // never dips into the band
      },
      6.0, 20.0, t, w);
  const auto bumps = extract_bumps(t, w);
  ASSERT_EQ(bumps.size(), 1u);
}

TEST(MeasureManeuver, LeftLaneChangeFeatures) {
  const vehicle::LaneChangeManeuver m(vehicle::LaneChangeDirection::kLeft,
                                      0.16, 8.0);
  std::vector<double> t;
  std::vector<double> w;
  sample_profile([&](double x) { return m.steering_rate(x); },
                 m.duration_s(), 50.0, t, w);
  const ManeuverFeatures f = measure_maneuver(t, w);
  EXPECT_TRUE(f.complete);
  EXPECT_NEAR(f.delta_pos, 0.16, 0.01);
  EXPECT_NEAR(f.delta_neg, 0.16, 0.01);
  EXPECT_GT(f.t_pos, 0.3);
  // Symmetric maneuver: both durations comparable.
  EXPECT_NEAR(f.t_pos, f.t_neg, 0.2);
}

TEST(MeasureManeuver, IncompleteWithoutNegativeBump) {
  std::vector<double> t;
  std::vector<double> w;
  sample_profile(
      [](double x) {
        return x < 3.0 ? 0.15 * std::sin(math::kPi * x / 3.0) : 0.0;
      },
      5.0, 20.0, t, w);
  const ManeuverFeatures f = measure_maneuver(t, w);
  EXPECT_FALSE(f.complete);
  EXPECT_GT(f.delta_pos, 0.1);
  EXPECT_DOUBLE_EQ(f.delta_neg, 0.0);
}

// Parameterized: the dominant bump is found across peak magnitudes.
class BumpMagnitude : public ::testing::TestWithParam<double> {};

TEST_P(BumpMagnitude, PeakRecovered) {
  const double peak = GetParam();
  std::vector<double> t;
  std::vector<double> w;
  sample_profile(
      [peak](double x) {
        return x >= 1.0 && x <= 4.0
                   ? peak * std::sin(math::kPi * (x - 1.0) / 3.0)
                   : 0.0;
      },
      6.0, 25.0, t, w);
  const auto bumps = extract_bumps(t, w);
  ASSERT_EQ(bumps.size(), 1u);
  EXPECT_NEAR(bumps[0].delta, peak, 0.02 * peak + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Peaks, BumpMagnitude,
                         ::testing::Values(0.05, 0.1, 0.15, 0.2, 0.4));

}  // namespace
}  // namespace rge::core
