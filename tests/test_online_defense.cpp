// Robustness tests for the self-defending online estimator: innovation
// gating with an adaptive R floor, per-source health scoring, quarantine
// with timed re-admission probes, and consensus accel-bias compensation.
//
// Contracts pinned here:
//  * under kAccelBiasRamp / kGpsSpoofJump / kStuckSensor the defended
//    (default-config) estimator has strictly lower grade RMSE than the
//    trusting, ungated baseline (defense off AND the EKF NIS gate off);
//  * on clean traces the defenses stay out of the way: accuracy in the
//    same class, nobody quarantined, no accel-bias engaged;
//  * the quarantine/re-admission state machine: health collapse enters
//    quarantine, the hold consumes measurements without applying them, a
//    failed probe re-arms the hold, readmit_probes consecutive passes
//    readmit on probation health;
//  * quarantined sources are excluded from fusion while any healthy
//    source exists (mask contract of OnlineEstimate).
#include "core/online_estimator.hpp"

#include <cmath>
#include <iostream>

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "road/network.hpp"
#include "sensors/smartphone.hpp"
#include "testing/fault_injection.hpp"
#include "vehicle/trip.hpp"

namespace rge::core {
namespace {

struct Scenario {
  road::Road road;
  vehicle::Trip trip;
  sensors::SensorTrace trace;
};

Scenario make_scenario(std::uint64_t seed) {
  Scenario sc{road::make_table3_route(2019), {}, {}};
  vehicle::TripConfig tc;
  tc.seed = seed;
  sc.trip = vehicle::simulate_trip(sc.road, tc);
  sensors::SmartphoneConfig pc;
  pc.seed = seed + 70;
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       vehicle::VehicleParams{}, pc);
  return sc;
}

/// Stream a full trace into the estimator in timestamp order, recording
/// the estimate after every 5th IMU sample (test_online_estimator idiom).
GradeTrack stream_trace(OnlineGradientEstimator& est,
                        const sensors::SensorTrace& trace) {
  GradeTrack track;
  track.source = "online";
  std::size_t gi = 0;
  std::size_t si = 0;
  std::size_t ci = 0;
  std::size_t bi = 0;
  std::size_t n = 0;
  for (const auto& imu : trace.imu) {
    while (gi < trace.gps.size() && trace.gps[gi].t <= imu.t) {
      est.push_gps(trace.gps[gi++]);
    }
    while (bi < trace.barometer_alt.size() &&
           trace.barometer_alt[bi].t <= imu.t) {
      est.push_baro(trace.barometer_alt[bi].t,
                    trace.barometer_alt[bi].value);
      ++bi;
    }
    while (si < trace.speedometer.size() &&
           trace.speedometer[si].t <= imu.t) {
      est.push_speedometer(trace.speedometer[si].t,
                           trace.speedometer[si].value);
      ++si;
    }
    while (ci < trace.canbus_speed.size() &&
           trace.canbus_speed[ci].t <= imu.t) {
      est.push_canbus(trace.canbus_speed[ci].t,
                      trace.canbus_speed[ci].value);
      ++ci;
    }
    est.push_imu(imu);
    if (++n % 5 == 0) {
      const auto e = est.estimate();
      track.t.push_back(e.t);
      track.grade.push_back(e.grade_rad);
      track.grade_var.push_back(std::max(1e-10, e.grade_var));
      track.speed.push_back(e.speed_mps);
      track.s.push_back(e.odometry_m);
    }
  }
  return track;
}

/// The trusting baseline: defense layer off AND the EKF's own NIS gate
/// disabled — every measurement is believed.
OnlineEstimatorConfig ungated_config() {
  OnlineEstimatorConfig cfg;
  cfg.defense.enabled = false;
  cfg.ekf.gate_nis = 0.0;
  return cfg;
}

double rmse_with(const Scenario& sc, const sensors::SensorTrace& trace,
                 const OnlineEstimatorConfig& cfg,
                 OnlineGradientEstimator* est_out = nullptr) {
  OnlineGradientEstimator est(vehicle::VehicleParams{}, cfg);
  const GradeTrack track = stream_trace(est, trace);
  const double rmse = evaluate_track(track, sc.trip).rmse_rad;
  EXPECT_TRUE(std::isfinite(rmse));
  if (est_out != nullptr) *est_out = std::move(est);
  return rmse;
}

/// Defended-vs-ungated RMSE pair on one fault spec.
std::pair<double, double> rmse_pair(std::uint64_t seed,
                                    const testing::FaultSpec& spec) {
  const Scenario sc = make_scenario(seed);
  sensors::SensorTrace faulted = sc.trace;
  testing::apply_fault(faulted, spec);
  const double defended = rmse_with(sc, faulted, OnlineEstimatorConfig{});
  const double ungated = rmse_with(sc, faulted, ungated_config());
  std::cout << "[ defense  ] " << testing::fault_name(spec.kind)
            << ": defended rmse=" << defended << " rad, ungated rmse="
            << ungated << " rad\n";
  return {defended, ungated};
}

// ---- RMSE under attack: defended strictly beats trusting ---------------

TEST(OnlineDefense, LowerRmseUnderAccelBiasRamp) {
  // A ramp strong enough to matter: the default 0.35 m/s^2/min barely
  // moves grade RMSE on this route, so pin the defense against the
  // sun-baked-dashboard worst case the compensator exists for.
  testing::FaultSpec spec =
      testing::make_fault(testing::FaultKind::kAccelBiasRamp);
  spec.bias_ramp_start_frac = 0.2;
  spec.bias_ramp_mps2_per_min = 1.5;
  const auto [defended, ungated] = rmse_pair(41, spec);
  EXPECT_LT(defended, ungated);
}

TEST(OnlineDefense, LowerRmseUnderGpsSpoofJump) {
  const auto [defended, ungated] =
      rmse_pair(42, testing::make_fault(testing::FaultKind::kGpsSpoofJump));
  EXPECT_LT(defended, ungated);
}

TEST(OnlineDefense, LowerRmseUnderStuckSensor) {
  // A long freeze starting early: both wheel-speed streams republish one
  // stale value while the vehicle keeps maneuvering.
  testing::FaultSpec spec =
      testing::make_fault(testing::FaultKind::kStuckSensor);
  spec.stuck_start_frac = 0.2;
  spec.stuck_duration_s = 120.0;
  const auto [defended, ungated] = rmse_pair(43, spec);
  EXPECT_LT(defended, ungated);
}

// ---- clean traces: defenses must stay out of the way -------------------

TEST(OnlineDefense, NeutralOnCleanTrace) {
  const Scenario sc = make_scenario(44);
  OnlineGradientEstimator defended_est(vehicle::VehicleParams{});
  OnlineEstimatorConfig legacy;
  legacy.defense.enabled = false;
  const double defended = rmse_with(sc, sc.trace, OnlineEstimatorConfig{},
                                    &defended_est);
  const double trusting = rmse_with(sc, sc.trace, legacy);
  // Same accuracy class (the gate may shave a few tail outliers either
  // way, but it must not cost real accuracy).
  EXPECT_LT(defended, 1.15 * trusting + 1e-4);
  // Nobody gets quarantined on nominal sensors, and the consensus bias
  // compensator never engages.
  for (const auto which :
       {VelocitySource::kGps, VelocitySource::kSpeedometer,
        VelocitySource::kCanbus}) {
    const SourceDiagnostics d = defended_est.source_diagnostics(which);
    EXPECT_TRUE(d.seeded);
    EXPECT_FALSE(d.quarantined);
    EXPECT_GT(d.health, 0.5);
  }
  EXPECT_LT(std::abs(defended_est.accel_bias_estimate()), 0.2);
}

TEST(OnlineDefense, SpoofedGpsFixesAreGated) {
  const Scenario sc = make_scenario(45);
  sensors::SensorTrace faulted = sc.trace;
  testing::apply_fault(
      faulted, testing::make_fault(testing::FaultKind::kGpsSpoofJump));
  OnlineGradientEstimator est(vehicle::VehicleParams{});
  (void)stream_trace(est, faulted);
  const SourceDiagnostics gps = est.source_diagnostics(VelocitySource::kGps);
  EXPECT_GT(gps.gate_rejected, 0u);
  // The other sources are clean and must not be collateral damage.
  EXPECT_FALSE(
      est.source_diagnostics(VelocitySource::kSpeedometer).quarantined);
  EXPECT_FALSE(est.source_diagnostics(VelocitySource::kCanbus).quarantined);
}

// ---- quarantine / re-admission state machine ---------------------------

/// Drive the canbus filter into quarantine with sustained outliers.
/// Returns the sample time of the last (quarantining) push.
double quarantine_canbus(OnlineGradientEstimator& est, double t0) {
  double t = t0;
  est.push_canbus(t, 10.0);  // seeds the filter
  for (int i = 0; i < 100; ++i) {
    if (est.source_diagnostics(VelocitySource::kCanbus).quarantined) return t;
    t += 0.1;
    est.push_canbus(t, 60.0);  // wildly implausible: always gate-rejected
  }
  return t;
}

TEST(OnlineDefense, SustainedOutliersEnterQuarantine) {
  OnlineGradientEstimator est(vehicle::VehicleParams{});
  quarantine_canbus(est, 0.0);
  const SourceDiagnostics d = est.source_diagnostics(VelocitySource::kCanbus);
  ASSERT_TRUE(d.quarantined);
  EXPECT_LT(d.health, OnlineDefenseConfig{}.quarantine_below);
  EXPECT_EQ(d.accepted, 1u);  // only the seeding measurement got through
  EXPECT_GT(d.gate_rejected, 5u);
}

TEST(OnlineDefense, HoldConsumesMeasurementsWithoutApplyingThem) {
  OnlineGradientEstimator est(vehicle::VehicleParams{});
  const double t_q = quarantine_canbus(est, 0.0);
  // Good measurements inside the hold advance the stream clock (replay
  // protection stays live) but never reach the EKF.
  est.push_canbus(t_q + 1.0, 10.0);
  const SourceDiagnostics d = est.source_diagnostics(VelocitySource::kCanbus);
  EXPECT_TRUE(d.quarantined);
  EXPECT_EQ(d.accepted, 1u);
  // ... and the consumed epoch is a duplicate afterwards: the accepted /
  // rejected counts stay put.
  est.push_canbus(t_q + 1.0, 10.0);
  EXPECT_EQ(est.source_diagnostics(VelocitySource::kCanbus).accepted, 1u);
}

TEST(OnlineDefense, ConsecutiveProbePassesReadmitOnProbation) {
  OnlineGradientEstimator est(vehicle::VehicleParams{});
  const OnlineDefenseConfig defaults;
  const double t_q = quarantine_canbus(est, 0.0);
  double t = t_q + defaults.readmit_after_s;
  for (int k = 0; k < defaults.readmit_probes; ++k) {
    EXPECT_TRUE(
        est.source_diagnostics(VelocitySource::kCanbus).quarantined);
    t += 0.1;
    est.push_canbus(t, 10.0);
  }
  const SourceDiagnostics d = est.source_diagnostics(VelocitySource::kCanbus);
  EXPECT_FALSE(d.quarantined);
  // Probation, not a clean slate: readmit() resets health to 0.5 and the
  // readmitting probe itself is accepted, earning one recovery step.
  EXPECT_DOUBLE_EQ(d.health, 0.5 + defaults.health_recover * 0.5);
  EXPECT_DOUBLE_EQ(d.bias_ewma, 0.0);
  EXPECT_EQ(d.accepted, 2u);  // seed + the readmitting probe
}

TEST(OnlineDefense, FailedProbeReArmsTheHold) {
  OnlineGradientEstimator est(vehicle::VehicleParams{});
  const OnlineDefenseConfig defaults;
  const double t_q = quarantine_canbus(est, 0.0);
  // First probe after the hold fails -> the hold re-arms; good
  // measurements right after must NOT count as probes.
  double t = t_q + defaults.readmit_after_s + 0.1;
  est.push_canbus(t, 60.0);
  for (int k = 0; k < defaults.readmit_probes; ++k) {
    t += 0.1;
    est.push_canbus(t, 10.0);
  }
  EXPECT_TRUE(est.source_diagnostics(VelocitySource::kCanbus).quarantined);
  // After the re-armed hold expires, consistent probes readmit as usual.
  t += defaults.readmit_after_s;
  for (int k = 0; k < defaults.readmit_probes; ++k) {
    t += 0.1;
    est.push_canbus(t, 10.0);
  }
  EXPECT_FALSE(est.source_diagnostics(VelocitySource::kCanbus).quarantined);
}

TEST(OnlineDefense, QuarantinedSourceExcludedFromFusionMasks) {
  OnlineGradientEstimator est(vehicle::VehicleParams{});
  // Seed two sources; then collapse only canbus.
  est.push_speedometer(0.05, 10.0);
  quarantine_canbus(est, 0.0);
  sensors::ImuSample imu;
  imu.t = 20.0;
  imu.accel_vertical = 9.81;
  est.push_imu(imu);
  const OnlineEstimate e = est.estimate();
  const auto canbus_bit = static_cast<std::uint8_t>(
      1u << static_cast<unsigned>(VelocitySource::kCanbus));
  const auto spd_bit = static_cast<std::uint8_t>(
      1u << static_cast<unsigned>(VelocitySource::kSpeedometer));
  EXPECT_EQ(e.sources_quarantined_mask, canbus_bit);
  EXPECT_EQ(e.sources_fused_mask & canbus_bit, 0);
  EXPECT_EQ(e.sources_fused_mask & spd_bit, spd_bit);
}

TEST(OnlineDefense, AllQuarantinedFallsBackToFusingEverything) {
  OnlineGradientEstimator est(vehicle::VehicleParams{});
  quarantine_canbus(est, 0.0);  // the only seeded source
  sensors::ImuSample imu;
  imu.t = 20.0;
  imu.accel_vertical = 9.81;
  est.push_imu(imu);
  const OnlineEstimate e = est.estimate();
  // Degraded continuity beats silence: the masks are equal and non-zero.
  EXPECT_NE(e.sources_fused_mask, 0);
  EXPECT_EQ(e.sources_fused_mask, e.sources_quarantined_mask);
}

}  // namespace
}  // namespace rge::core
