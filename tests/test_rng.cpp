// Unit tests for deterministic RNG and noise processes.
#include "math/rng.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "math/stats.hpp"

namespace rge::math {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.gaussian(), b.gaussian());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.gaussian() == b.gaussian()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIndependence) {
  const Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c1_again = parent.fork(1);
  EXPECT_DOUBLE_EQ(c1.gaussian(), c1_again.gaussian());
  // Distinct tags should give distinct streams.
  Rng d1 = parent.fork(1);
  Rng d2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (d1.gaussian() == d2.gaussian()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkByString) {
  const Rng parent(9);
  Rng a = parent.fork("accel");
  Rng a2 = parent.fork("accel");
  Rng g = parent.fork("gyro");
  EXPECT_DOUBLE_EQ(a.gaussian(), a2.gaussian());
  EXPECT_NE(a.gaussian(), g.gaussian());
}

TEST(Rng, ForkTagHashGoldens) {
  // Pinned FNV-1a 64 values for the tags the simulation and fuzz stack
  // fork on. These are load-bearing: every committed golden baseline and
  // the fixed-seed fuzz corpus derive their streams from hash_tag, so a
  // hash change silently re-rolls every scenario. If this test fails you
  // changed the hash — regenerate ALL goldens or revert.
  EXPECT_EQ(Rng::hash_tag(""), 0xcbf29ce484222325ULL);  // FNV offset basis
  EXPECT_EQ(Rng::hash_tag("hostile-terrain"), 0xd0cd443e69923fb1ULL);
  EXPECT_EQ(Rng::hash_tag("driving-profile"), 0xed4fb91e72c307c8ULL);
  EXPECT_EQ(Rng::hash_tag("phone-population"), 0xace02190607a1121ULL);
  EXPECT_EQ(Rng::hash_tag("fuzz-scenario"), 0xa0034449759c9f75ULL);
  EXPECT_EQ(Rng::hash_tag("fuzz-sweep"), 0x9e57b07f7a61b661ULL);
  EXPECT_EQ(Rng::hash_tag("trip"), 0x5b33bbef512af60aULL);
  EXPECT_EQ(Rng::hash_tag("phone"), 0x31fc9c6bde865d6fULL);

  // fork(string) is exactly fork(hash_tag(string)) — checked on the raw
  // mt19937_64 outputs, which the standard specifies exactly, so these
  // goldens are portable across platforms and library versions.
  const Rng parent(20260808);
  Rng by_string = parent.fork("fuzz-sweep");
  Rng by_hash = parent.fork(Rng::hash_tag("fuzz-sweep"));
  const std::uint64_t draws[] = {
      0x8849682841f079f7ULL, 0x6e24d2c31f18d5ecULL,
      0x89a5770f6e1faf4eULL, 0x163dc3a1a4a8bdcfULL};
  for (const std::uint64_t want : draws) {
    EXPECT_EQ(by_string.engine()(), want);
    EXPECT_EQ(by_hash.engine()(), want);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(mean(xs), 5.0, 0.06);
  EXPECT_NEAR(stddev(xs), 2.0, 0.06);
}

TEST(Rng, UniformRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
  for (int i = 0; i < 100; ++i) {
    const auto k = rng.uniform_int(1, 3);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 3);
  }
}

TEST(Rng, Bernoulli) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(DriftProcess, RandomWalkVarianceGrowsLinearly) {
  // tau <= 0 selects the pure random walk with sigma per sqrt(second).
  const int trials = 400;
  std::vector<double> at1;
  std::vector<double> at4;
  for (int k = 0; k < trials; ++k) {
    Rng rng(1000 + k);
    DriftProcess p(0.5, 0.0);
    for (int i = 0; i < 10; ++i) p.step(0.1, rng);
    at1.push_back(p.value());
    for (int i = 0; i < 30; ++i) p.step(0.1, rng);
    at4.push_back(p.value());
  }
  EXPECT_NEAR(variance(at1), 0.25, 0.06);      // sigma^2 * t, t=1
  EXPECT_NEAR(variance(at4), 1.0, 0.25);       // t=4
}

TEST(DriftProcess, OuIsStationary) {
  Rng rng(55);
  DriftProcess p(0.3, 5.0);
  // Burn in, then collect.
  for (int i = 0; i < 1000; ++i) p.step(0.1, rng);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(p.step(0.1, rng));
  EXPECT_NEAR(stddev(xs), 0.3, 0.05);
  EXPECT_NEAR(mean(xs), 0.0, 0.05);
}

TEST(DriftProcess, ZeroDtIsNoOp) {
  Rng rng(1);
  DriftProcess p(1.0, 0.0, 2.5);
  EXPECT_DOUBLE_EQ(p.step(0.0, rng), 2.5);
  EXPECT_DOUBLE_EQ(p.value(), 2.5);
  p.reset(-1.0);
  EXPECT_DOUBLE_EQ(p.value(), -1.0);
}

TEST(SensorNoise, WhiteNoiseLevel) {
  SensorNoise::Config cfg;
  cfg.white_sigma = 0.2;
  SensorNoise noise(cfg, Rng(10));
  std::vector<double> errs;
  for (int i = 0; i < 20000; ++i) {
    errs.push_back(noise.corrupt(1.0, 0.01) - 1.0);
  }
  EXPECT_NEAR(stddev(errs), 0.2, 0.01);
  EXPECT_NEAR(mean(errs), 0.0, 0.01);
}

TEST(SensorNoise, ConstantBiasAndQuantization) {
  SensorNoise::Config cfg;
  cfg.constant_bias = 0.5;
  cfg.quantization = 0.25;
  SensorNoise noise(cfg, Rng(11));
  const double out = noise.corrupt(1.0, 0.01);
  EXPECT_DOUBLE_EQ(out, 1.5);  // quantization grid includes 1.5
  const double out2 = noise.corrupt(1.06, 0.01);
  EXPECT_DOUBLE_EQ(out2, 1.5);  // 1.56 rounds to 1.5
}

TEST(SensorNoise, DriftAccumulates) {
  SensorNoise::Config cfg;
  cfg.drift_sigma = 0.5;
  cfg.drift_tau_s = 0.0;  // random walk
  SensorNoise noise(cfg, Rng(12));
  double last = 0.0;
  for (int i = 0; i < 1000; ++i) last = noise.corrupt(0.0, 1.0);
  EXPECT_NE(last, 0.0);
  EXPECT_DOUBLE_EQ(last, noise.current_drift());
}

}  // namespace
}  // namespace rge::math
