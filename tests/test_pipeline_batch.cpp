// Determinism and equivalence tests for the parallel batch runtime:
// run_pipeline_batch must be bit-identical to the serial pipeline for any
// thread count, and the batch cloud-fusion entry point must match the
// serial fuser sample for sample.
#include "core/pipeline.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "core/map_matching.hpp"
#include "core/track_fusion.hpp"
#include "road/network.hpp"
#include "runtime/thread_pool.hpp"
#include "sensors/smartphone.hpp"
#include "vehicle/trip.hpp"

namespace rge::core {
namespace {

std::vector<sensors::SensorTrace> make_traces(int count) {
  const road::Road route = road::make_table3_route(2019);
  std::vector<sensors::SensorTrace> traces;
  for (int v = 0; v < count; ++v) {
    vehicle::TripConfig tc;
    tc.seed = 40 + static_cast<std::uint64_t>(v);
    tc.lane_changes_per_km = 3.0;
    tc.cruise_speed_mps = 9.0 + 0.5 * v;
    const auto trip = vehicle::simulate_trip(route, tc);
    sensors::SmartphoneConfig pc;
    pc.seed = 70 + static_cast<std::uint64_t>(v);
    traces.push_back(sensors::simulate_sensors(trip, route.anchor(),
                                               vehicle::VehicleParams{}, pc));
  }
  return traces;
}

/// Exact (bitwise, via ==) comparison of every array of two tracks.
void expect_tracks_identical(const GradeTrack& a, const GradeTrack& b) {
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.t, b.t);
  EXPECT_EQ(a.grade, b.grade);
  EXPECT_EQ(a.grade_var, b.grade_var);
  EXPECT_EQ(a.speed, b.speed);
  EXPECT_EQ(a.s, b.s);
}

TEST(PipelineBatch, BitIdenticalToSerialAcrossThreadCounts) {
  const auto traces = make_traces(3);
  const vehicle::VehicleParams car;
  const PipelineConfig cfg;

  std::vector<PipelineResult> serial;
  for (const auto& trace : traces) {
    serial.push_back(estimate_gradient(trace, car, cfg));
  }

  for (std::size_t threads : {1u, 2u, 8u}) {
    const auto batch = run_pipeline_batch(traces, car, cfg, threads);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("trace " + std::to_string(i) + ", threads " +
                   std::to_string(threads));
      expect_tracks_identical(batch[i].fused, serial[i].fused);
      ASSERT_EQ(batch[i].tracks.size(), serial[i].tracks.size());
      for (std::size_t k = 0; k < serial[i].tracks.size(); ++k) {
        expect_tracks_identical(batch[i].tracks[k], serial[i].tracks[k]);
      }
      EXPECT_EQ(batch[i].lane_changes.size(), serial[i].lane_changes.size());
    }
  }
}

TEST(PipelineBatch, EmptyInputYieldsEmptyOutput) {
  const auto results =
      run_pipeline_batch({}, vehicle::VehicleParams{}, PipelineConfig{}, 2);
  EXPECT_TRUE(results.empty());
}

TEST(PipelineBatch, PropagatesPerTraceErrors) {
  std::vector<sensors::SensorTrace> traces(1);  // empty trace
  EXPECT_THROW(
      run_pipeline_batch(traces, vehicle::VehicleParams{}, PipelineConfig{}, 2),
      std::invalid_argument);
}

TEST(PipelineBatch, MetricsAccumulateAcrossTrips) {
  const auto traces = make_traces(2);
  runtime::StageMetrics metrics;
  const auto results = run_pipeline_batch(traces, vehicle::VehicleParams{},
                                          PipelineConfig{}, 2, &metrics);
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(metrics.trips.load(), 2);
  EXPECT_GT(metrics.align_ns.load(), 0);
  EXPECT_GT(metrics.detect_ns.load(), 0);
  EXPECT_GT(metrics.ekf_ns.load(), 0);
  EXPECT_GT(metrics.fuse_ns.load(), 0);
}

TEST(PipelineBatch, FusedTracksSatisfyInvariants) {
  const auto traces = make_traces(2);
  const auto results =
      run_pipeline_batch(traces, vehicle::VehicleParams{}, PipelineConfig{}, 4);
  for (const auto& r : results) {
    EXPECT_NO_THROW(r.fused.validate());
  }
}

TEST(FuseDistanceBatch, BitIdenticalToSerialFuser) {
  // Two trips over the same road, re-keyed to road distance, fused on the
  // cloud path — the serial and pool entry points must agree exactly.
  const road::Road route = road::make_table3_route(2019);
  const auto traces = make_traces(2);
  const auto results =
      run_pipeline_batch(traces, vehicle::VehicleParams{}, PipelineConfig{}, 2);
  std::vector<GradeTrack> uploads;
  for (std::size_t v = 0; v < results.size(); ++v) {
    uploads.push_back(
        rekey_track_by_road(results[v].fused, route, traces[v].gps));
  }

  FusionConfig fc;
  fc.distance_step_m = 7.5;
  const GradeTrack serial = fuse_tracks_distance(uploads, fc);
  for (std::size_t threads : {1u, 3u}) {
    runtime::ThreadPool pool(threads);
    runtime::StageMetrics metrics;
    const GradeTrack batch =
        fuse_tracks_distance_batch(uploads, fc, pool, &metrics);
    expect_tracks_identical(batch, serial);
    EXPECT_GT(metrics.fuse_ns.load(), 0);
  }
}

}  // namespace
}  // namespace rge::core
