// Unit tests for road geometry and the section-based builder.
#include "road/road.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"

namespace rge::road {
namespace {

using math::deg2rad;

TEST(RoadBuilder, Validation) {
  EXPECT_THROW(RoadBuilder("r", 0.0), std::invalid_argument);
  RoadBuilder b("r");
  EXPECT_THROW(b.build(), std::logic_error);
  EXPECT_THROW(b.add_section(SectionSpec{-5.0}), std::invalid_argument);
  EXPECT_THROW(b.add_section(SectionSpec{10.0, 0.0, 0.0, 0.0, 0}),
               std::invalid_argument);
}

TEST(RoadBuilder, StraightFlatRoad) {
  RoadBuilder b("flat");
  b.add_straight(100.0);
  const Road r = b.build();
  EXPECT_NEAR(r.length_m(), 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.grade_at(50.0), 0.0);
  EXPECT_DOUBLE_EQ(r.elevation_at(100.0), 0.0);
  const auto end = r.position_at(100.0);
  EXPECT_NEAR(end.east_m, 100.0, 1e-9);  // default heading = East
  EXPECT_NEAR(end.north_m, 0.0, 1e-9);
}

TEST(RoadBuilder, GradedRoadGainsElevation) {
  RoadBuilder b("hill");
  const double grade = deg2rad(5.0);
  b.add_straight(1000.0, grade);
  const Road r = b.build();
  EXPECT_NEAR(r.grade_at(500.0), grade, 1e-12);
  EXPECT_NEAR(r.elevation_at(1000.0), 1000.0 * std::sin(grade), 1e-6);
  // Horizontal run is shortened by cos(grade).
  EXPECT_NEAR(r.position_at(1000.0).east_m, 1000.0 * std::cos(grade), 1e-6);
}

TEST(RoadBuilder, GradeRampIsLinear) {
  RoadBuilder b("ramp");
  b.add_section(SectionSpec{100.0, 0.0, deg2rad(4.0), 0.0, 1});
  const Road r = b.build();
  EXPECT_NEAR(r.grade_at(50.0), deg2rad(2.0), deg2rad(0.1));
  EXPECT_LT(r.grade_at(10.0), r.grade_at(90.0));
}

TEST(RoadBuilder, HeadingChangeIntegrates) {
  RoadBuilder b("curve");
  b.set_initial_heading(0.0);
  b.add_section(SectionSpec{100.0, 0.0, 0.0, deg2rad(90.0), 1});
  const Road r = b.build();
  EXPECT_NEAR(r.heading_at(100.0), deg2rad(90.0), 1e-9);
  EXPECT_NEAR(r.heading_at(50.0), deg2rad(45.0), deg2rad(1.0));
  // Quarter-circle of 100 m: radius = L / (pi/2).
  const double radius = 100.0 / (math::kPi / 2.0);
  const auto end = r.position_at(100.0);
  EXPECT_NEAR(end.east_m, radius, 1.0);
  EXPECT_NEAR(end.north_m, radius, 1.0);
  EXPECT_NEAR(r.curvature_at(50.0), deg2rad(90.0) / 100.0, 1e-6);
}

TEST(RoadBuilder, SCurveReturnsToOriginalHeading) {
  RoadBuilder b("s");
  b.set_initial_heading(deg2rad(30.0));
  b.add_s_curve(400.0, deg2rad(15.0));
  const Road r = b.build();
  EXPECT_NEAR(r.heading_at(400.0), deg2rad(30.0), 1e-9);
  // Peak deviation at the first quarter boundary.
  EXPECT_NEAR(r.heading_at(100.0), deg2rad(45.0), deg2rad(0.5));
  EXPECT_NEAR(r.heading_at(300.0), deg2rad(15.0), deg2rad(0.5));
}

TEST(RoadBuilder, LanesPerSection) {
  RoadBuilder b("lanes");
  b.add_straight(100.0, 0.0, 1);
  b.add_straight(100.0, 0.0, 2);
  const Road r = b.build();
  EXPECT_EQ(r.lanes_at(50.0), 1);
  EXPECT_EQ(r.lanes_at(150.0), 2);
}

TEST(RoadBuilder, SectionInfoRecorded) {
  RoadBuilder b("sections");
  b.add_straight(100.0, deg2rad(2.0), 1);
  b.add_straight(200.0, deg2rad(-1.0), 2);
  const Road r = b.build();
  ASSERT_EQ(r.sections().size(), 2u);
  EXPECT_NEAR(r.sections()[0].mean_grade_rad, deg2rad(2.0), 1e-9);
  EXPECT_TRUE(r.sections()[0].uphill());
  EXPECT_FALSE(r.sections()[1].uphill());
  EXPECT_NEAR(r.sections()[1].length_m(), 200.0, 1e-6);
  EXPECT_EQ(r.sections()[1].lanes, 2);
}

TEST(Road, GeoAnchoring) {
  const math::GeoPoint anchor{38.0, -78.5, 100.0};
  RoadBuilder b("geo");
  b.set_anchor(anchor);
  b.set_initial_heading(deg2rad(90.0));  // due North
  b.add_straight(1000.0);
  const Road r = b.build();
  const auto geo = r.geo_at(1000.0);
  EXPECT_GT(geo.latitude_deg, anchor.latitude_deg);
  EXPECT_NEAR(geo.longitude_deg, anchor.longitude_deg, 1e-9);
  EXPECT_NEAR(math::haversine_distance_m(anchor, geo), 1000.0, 1.0);
  EXPECT_DOUBLE_EQ(r.anchor().altitude_m, 100.0);
}

TEST(Road, QueryClamping) {
  RoadBuilder b("clamp");
  b.add_straight(100.0, deg2rad(3.0));
  const Road r = b.build();
  EXPECT_DOUBLE_EQ(r.grade_at(-10.0), r.grade_at(0.0));
  EXPECT_DOUBLE_EQ(r.grade_at(500.0), r.grade_at(100.0));
}

TEST(Road, ConstructorValidation) {
  EXPECT_THROW(Road("bad", {0.0, 1.0}, {0.0, 1.0}, {0.0}, {0.0, 0.0},
                    {0.0, 0.0}, {0.0, 0.0}, {1, 1}, {}, math::GeoPoint{}),
               std::invalid_argument);
  EXPECT_THROW(Road("bad", {0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0},
                    {0.0, 0.0}, {0.0, 0.0}, {1, 1}, {}, math::GeoPoint{}),
               std::invalid_argument);
}

TEST(RoadBuilder, TotalLengthAccumulates) {
  RoadBuilder b("total");
  b.add_straight(120.0).add_straight(80.0);
  EXPECT_DOUBLE_EQ(b.total_length_m(), 200.0);
}

// Parameterized: elevation gain equals integral of sin(grade) for a range
// of grades.
class GradeIntegration : public ::testing::TestWithParam<double> {};

TEST_P(GradeIntegration, ElevationMatchesGrade) {
  const double grade = deg2rad(GetParam());
  RoadBuilder b("g");
  b.add_straight(500.0, grade);
  const Road r = b.build();
  EXPECT_NEAR(r.elevation_at(500.0), 500.0 * std::sin(grade), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Grades, GradeIntegration,
                         ::testing::Values(-8.0, -3.0, -0.5, 0.0, 0.5, 3.0,
                                           8.0));

}  // namespace
}  // namespace rge::road
