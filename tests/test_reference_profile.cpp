// Unit tests for the Section III-D reference-gradient survey method.
#include "road/reference_profile.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"
#include "math/stats.hpp"
#include "road/network.hpp"

namespace rge::road {
namespace {

using math::deg2rad;

Road simple_hill() {
  RoadBuilder b("hill");
  b.add_straight(300.0, deg2rad(3.0));
  b.add_straight(300.0, deg2rad(-2.0));
  return b.build();
}

TEST(ReferenceProfile, SegmentsCoverRoad) {
  const Road r = simple_hill();
  const ReferenceProfile ref = survey_reference_profile(r);
  ASSERT_FALSE(ref.segments.empty());
  EXPECT_NEAR(ref.segments.front().start_s_m, 0.0, 1e-9);
  EXPECT_NEAR(ref.segments.back().end_s_m, r.length_m(), 1.5);
  // 1 m segments by default.
  EXPECT_NEAR(ref.segments[0].end_s_m - ref.segments[0].start_s_m, 1.0,
              1e-9);
}

TEST(ReferenceProfile, RecoversTrueGradeClosely) {
  const Road r = simple_hill();
  const ReferenceProfile ref = survey_reference_profile(r);
  const auto exact = exact_grades_at(r, ref);
  const auto surveyed = ref.grades();
  // The altimeter is ~1 cm accurate over 1 m segments: per-segment grade
  // noise is ~ atan(0.014) ~ 0.8 deg, but unbiased; the mean error over
  // each 300 m leg must be tiny.
  ASSERT_EQ(exact.size(), surveyed.size());
  const double mae = math::mae(surveyed, exact);
  EXPECT_LT(mae, deg2rad(1.5));
  EXPECT_NEAR(math::bias(surveyed, exact), 0.0, deg2rad(0.1));
}

TEST(ReferenceProfile, LongerSegmentsAreLessNoisy) {
  const Road r = simple_hill();
  SurveyOptions coarse;
  coarse.segment_length_m = 10.0;
  const ReferenceProfile fine = survey_reference_profile(r);
  const ReferenceProfile rough = survey_reference_profile(r, coarse);
  const double mae_fine =
      math::mae(fine.grades(), exact_grades_at(r, fine));
  const double mae_rough =
      math::mae(rough.grades(), exact_grades_at(r, rough));
  EXPECT_LT(mae_rough, mae_fine);  // same altimeter noise over longer base
}

TEST(ReferenceProfile, GradeAtLookup) {
  const Road r = simple_hill();
  SurveyOptions opts;
  opts.altimeter_sigma_m = 0.0;  // noise-free survey
  opts.position_sigma_deg = 0.0;
  const ReferenceProfile ref = survey_reference_profile(r, opts);
  EXPECT_NEAR(ref.grade_at(150.0), deg2rad(3.0), deg2rad(0.05));
  EXPECT_NEAR(ref.grade_at(450.0), deg2rad(-2.0), deg2rad(0.05));
  // Clamping at the ends.
  EXPECT_DOUBLE_EQ(ref.grade_at(-5.0), ref.segments.front().grade_rad);
  EXPECT_DOUBLE_EQ(ref.grade_at(1e9), ref.segments.back().grade_rad);
}

TEST(ReferenceProfile, DirectionTracksRoadHeading) {
  RoadBuilder b("ne");
  b.set_initial_heading(deg2rad(45.0));
  b.add_straight(200.0);
  const Road r = b.build();
  SurveyOptions opts;
  opts.altimeter_sigma_m = 0.0;
  opts.position_sigma_deg = 0.0;
  const ReferenceProfile ref = survey_reference_profile(r, opts);
  for (const auto& seg : ref.segments) {
    EXPECT_NEAR(seg.direction_rad, deg2rad(45.0), deg2rad(1.0));
  }
}

TEST(ReferenceProfile, Validation) {
  const Road r = simple_hill();
  SurveyOptions opts;
  opts.segment_length_m = 0.0;
  EXPECT_THROW(survey_reference_profile(r, opts), std::invalid_argument);
  opts.segment_length_m = 1e6;
  EXPECT_THROW(survey_reference_profile(r, opts), std::invalid_argument);
  EXPECT_THROW(ReferenceProfile{}.grade_at(0.0), std::logic_error);
}

TEST(ReferenceProfile, WorksOnTable3Route) {
  const Road r = make_table3_route(2019);
  const ReferenceProfile ref = survey_reference_profile(r);
  EXPECT_EQ(ref.segments.size(), 2160u);
  const double mae = math::mae(ref.grades(), exact_grades_at(r, ref));
  EXPECT_LT(mae, deg2rad(1.5));
}

}  // namespace
}  // namespace rge::road
