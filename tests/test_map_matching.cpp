// Unit tests for GPS-to-road map matching.
#include "core/map_matching.hpp"
#include "core/pipeline.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "road/network.hpp"
#include "sensors/smartphone.hpp"
#include "vehicle/trip.hpp"

namespace rge::core {
namespace {

using math::deg2rad;

road::Road bent_road() {
  road::RoadBuilder b("bent");
  b.add_straight(800.0, deg2rad(2.0));
  b.add_section(road::SectionSpec{400.0, deg2rad(2.0), deg2rad(-1.0),
                                  deg2rad(60.0), 1});
  b.add_straight(800.0, deg2rad(-1.0));
  return b.build();
}

TEST(MatchPoint, OnCenterline) {
  const road::Road r = bent_road();
  for (double s : {50.0, 700.0, 1100.0, 1900.0}) {
    const auto m = match_point(r, r.geo_at(s));
    EXPECT_TRUE(m.valid);
    EXPECT_NEAR(m.s_m, s, 2.0) << "s=" << s;
    EXPECT_LT(m.lateral_m, 1.0);
  }
}

TEST(MatchPoint, LateralOffsetMeasured) {
  const road::Road r = bent_road();
  // A point 12 m left of the road at s = 500.
  const auto pos = r.position_at(500.0);
  const double h = r.heading_at(500.0);
  math::Enu offset = pos;
  offset.east_m += -std::sin(h) * 12.0;
  offset.north_m += std::cos(h) * 12.0;
  const auto geo = math::LocalTangentPlane(r.anchor()).to_geodetic(offset);
  const auto m = match_point(r, geo);
  EXPECT_TRUE(m.valid);
  EXPECT_NEAR(m.s_m, 500.0, 3.0);
  EXPECT_NEAR(m.lateral_m, 12.0, 1.0);
}

TEST(MatchPoint, FarAwayRejected) {
  const road::Road r = bent_road();
  const auto pos = r.position_at(500.0);
  math::Enu offset = pos;
  offset.north_m += 500.0;
  const auto geo = math::LocalTangentPlane(r.anchor()).to_geodetic(offset);
  const auto m = match_point(r, geo);
  EXPECT_FALSE(m.valid);
}

struct Scenario {
  road::Road road = bent_road();
  vehicle::Trip trip;
  sensors::SensorTrace trace;
};

Scenario simulate(std::uint64_t seed, int outages = 0) {
  Scenario sc;
  vehicle::TripConfig tc;
  tc.seed = seed;
  tc.allow_lane_changes = false;
  sc.trip = vehicle::simulate_trip(sc.road, tc);
  sensors::SmartphoneConfig pc;
  pc.seed = seed + 40;
  pc.random_outage_count = outages;
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       vehicle::VehicleParams{}, pc);
  return sc;
}

TEST(MatchTrack, FollowsDriveMonotonically) {
  const Scenario sc = simulate(3);
  const auto matched = match_track(sc.road, sc.trace.gps);
  ASSERT_EQ(matched.size(), sc.trace.gps.size());
  double prev_s = -1.0;
  std::size_t valid = 0;
  for (const auto& m : matched) {
    if (!m.valid) continue;
    EXPECT_GE(m.s_m, prev_s - 1e-9);  // forward progress
    prev_s = m.s_m;
    ++valid;
  }
  EXPECT_GT(valid, matched.size() * 9 / 10);
  // Matched distance should track true distance within GPS noise.
  std::size_t si = 0;
  for (const auto& m : matched) {
    if (!m.valid) continue;
    while (si + 1 < sc.trip.states.size() && sc.trip.states[si].t < m.t) {
      ++si;
    }
    EXPECT_NEAR(m.s_m, sc.trip.states[si].s, 20.0);
  }
}

TEST(MatchTrack, OutagesProduceInvalidEntries) {
  const Scenario sc = simulate(4, 2);
  const auto matched = match_track(sc.road, sc.trace.gps);
  std::size_t invalid = 0;
  for (std::size_t i = 0; i < matched.size(); ++i) {
    if (!sc.trace.gps[i].valid) {
      EXPECT_FALSE(matched[i].valid);
      ++invalid;
    }
  }
  EXPECT_GT(invalid, 0u);
}

TEST(RekeyTrack, AlignsOdometryToRoadDistance) {
  const Scenario sc = simulate(5);
  const auto res =
      estimate_gradient(sc.trace, vehicle::VehicleParams{});
  const GradeTrack rekeyed =
      rekey_track_by_road(res.fused, sc.road, sc.trace.gps);
  ASSERT_EQ(rekeyed.size(), res.fused.size());
  // Re-keyed distances must agree with the trip's true distance at the
  // same timestamps far better than worst-case odometry drift.
  std::size_t si = 0;
  for (std::size_t i = 0; i < rekeyed.t.size(); i += 20) {
    while (si + 1 < sc.trip.states.size() &&
           sc.trip.states[si].t < rekeyed.t[i]) {
      ++si;
    }
    EXPECT_NEAR(rekeyed.s[i], sc.trip.states[si].s, 15.0);
  }
  // Monotone.
  for (std::size_t i = 1; i < rekeyed.s.size(); ++i) {
    EXPECT_GE(rekeyed.s[i], rekeyed.s[i - 1] - 5.0);
  }
}

TEST(MatchCache, RepeatedCallsBuildTheGridOnce) {
  // The pre-cache implementation rebuilt the projection polyline on every
  // match_point call; this pins the fix via the obs counters. A fresh road
  // (unique name, new address) guarantees a cold cache entry.
  road::RoadBuilder b("cache-build-once-road");
  b.add_straight(900.0, deg2rad(1.5));
  const road::Road r = b.build();

  obs::reset_all();
  obs::set_enabled(true);
  constexpr int kCalls = 8;
  for (int i = 0; i < kCalls; ++i) {
    const auto m = match_point(r, r.geo_at(100.0 + 50.0 * i));
    EXPECT_TRUE(m.valid);
  }
  const auto snap = obs::Registry::global().snapshot();
  obs::set_enabled(false);
  obs::reset_all();

  EXPECT_EQ(snap.counters.at("match.grid_build"), 1);
  EXPECT_EQ(snap.counters.at("match.cache_miss"), 1);
  EXPECT_EQ(snap.counters.at("match.cache_hit"), kCalls - 1);
  EXPECT_EQ(snap.counters.at("match.query"), kCalls);
}

TEST(MatchCache, ConfigChangeBuildsASeparateMatcher) {
  road::RoadBuilder b("cache-config-split-road");
  b.add_straight(600.0, deg2rad(0.5));
  const road::Road r = b.build();

  obs::reset_all();
  obs::set_enabled(true);
  (void)match_point(r, r.geo_at(200.0));
  MapMatchConfig coarse;
  coarse.grid_step_m = 20.0;
  (void)match_point(r, r.geo_at(200.0), coarse);
  (void)match_point(r, r.geo_at(300.0), coarse);  // hits the second entry
  const auto snap = obs::Registry::global().snapshot();
  obs::set_enabled(false);
  obs::reset_all();

  EXPECT_EQ(snap.counters.at("match.grid_build"), 2);
  EXPECT_EQ(snap.counters.at("match.cache_hit"), 1);
}

TEST(RekeyTrack, ThrowsWithoutUsableFixes) {
  const Scenario sc = simulate(6);
  const auto res =
      estimate_gradient(sc.trace, vehicle::VehicleParams{});
  std::vector<sensors::GpsFix> none;
  EXPECT_THROW(rekey_track_by_road(res.fused, sc.road, none),
               std::invalid_argument);
  // All-invalid fixes also throw.
  auto invalid = sc.trace.gps;
  for (auto& f : invalid) f.valid = false;
  EXPECT_THROW(rekey_track_by_road(res.fused, sc.road, invalid),
               std::invalid_argument);
}

}  // namespace
}  // namespace rge::core
