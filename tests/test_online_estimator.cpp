// Tests for the streaming estimator and the barometer-augmented EKF.
#include "core/online_estimator.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/alignment.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "core/velocity_sources.hpp"
#include "math/angles.hpp"
#include "math/stats.hpp"
#include "obs/obs.hpp"
#include "road/network.hpp"
#include "sensors/smartphone.hpp"
#include "vehicle/trip.hpp"

namespace rge::core {
namespace {

using math::deg2rad;

struct Scenario {
  road::Road road;
  vehicle::Trip trip;
  sensors::SensorTrace trace;
};

Scenario make_scenario(std::uint64_t seed, double lc_per_km = 4.0) {
  Scenario sc{road::make_table3_route(2019), {}, {}};
  vehicle::TripConfig tc;
  tc.seed = seed;
  tc.lane_changes_per_km = lc_per_km;
  sc.trip = vehicle::simulate_trip(sc.road, tc);
  sensors::SmartphoneConfig pc;
  pc.seed = seed + 70;
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       vehicle::VehicleParams{}, pc);
  return sc;
}

/// Stream a full trace into the estimator in timestamp order, recording
/// the estimate after every IMU sample.
GradeTrack stream_trace(OnlineGradientEstimator& est,
                        const sensors::SensorTrace& trace) {
  GradeTrack track;
  track.source = "online";
  std::size_t gi = 0;
  std::size_t si = 0;
  std::size_t ci = 0;
  std::size_t n = 0;
  for (const auto& imu : trace.imu) {
    while (gi < trace.gps.size() && trace.gps[gi].t <= imu.t) {
      est.push_gps(trace.gps[gi++]);
    }
    while (si < trace.speedometer.size() &&
           trace.speedometer[si].t <= imu.t) {
      est.push_speedometer(trace.speedometer[si].t,
                           trace.speedometer[si].value);
      ++si;
    }
    while (ci < trace.canbus_speed.size() &&
           trace.canbus_speed[ci].t <= imu.t) {
      est.push_canbus(trace.canbus_speed[ci].t,
                      trace.canbus_speed[ci].value);
      ++ci;
    }
    est.push_imu(imu);
    if (++n % 5 == 0) {
      const auto e = est.estimate();
      track.t.push_back(e.t);
      track.grade.push_back(e.grade_rad);
      track.grade_var.push_back(std::max(1e-10, e.grade_var));
      track.speed.push_back(e.speed_mps);
      track.s.push_back(e.odometry_m);
    }
  }
  return track;
}

TEST(OnlineEstimator, TracksGradeOnline) {
  const Scenario sc = make_scenario(5);
  OnlineGradientEstimator est(vehicle::VehicleParams{});
  const GradeTrack track = stream_trace(est, sc.trace);
  ASSERT_GT(track.size(), 100u);
  const auto stats = evaluate_track(track, sc.trip);
  // Online accuracy within ~1.5x of the batch pipeline's ballpark.
  EXPECT_LT(stats.median_abs_deg, 0.5);
  EXPECT_LT(stats.mre, 0.35);
}

TEST(OnlineEstimator, CloseToBatchPipeline) {
  const Scenario sc = make_scenario(6);
  OnlineGradientEstimator online(vehicle::VehicleParams{});
  const GradeTrack track = stream_trace(online, sc.trace);
  const auto batch =
      estimate_gradient(sc.trace, vehicle::VehicleParams{});
  const auto st_online = evaluate_track(track, sc.trip);
  const auto st_batch = evaluate_track(batch.fused, sc.trip);
  // The batch pipeline smooths with hindsight and uses the IMU velocity
  // source; online must be in the same accuracy class.
  EXPECT_LT(st_online.median_abs_deg, 2.0 * st_batch.median_abs_deg + 0.05);
}

TEST(OnlineEstimator, DetectsLaneChangesOnline) {
  std::size_t true_total = 0;
  std::size_t matched = 0;
  std::size_t detected_total = 0;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const Scenario sc = make_scenario(seed, 5.0);
    OnlineGradientEstimator est(vehicle::VehicleParams{});
    (void)stream_trace(est, sc.trace);
    true_total += sc.trip.lane_changes.size();
    detected_total += est.lane_changes().size();
    for (const auto& truth : sc.trip.lane_changes) {
      for (const auto& det : est.lane_changes()) {
        if (det.t_start < truth.end_t + 1.0 &&
            det.t_end > truth.start_t - 1.0) {
          ++matched;
          break;
        }
      }
    }
  }
  ASSERT_GT(true_total, 2u);
  EXPECT_GE(static_cast<double>(matched) / true_total, 0.7);
  EXPECT_LE(detected_total, true_total + 2);
}

TEST(OnlineEstimator, EmptyBeforeData) {
  OnlineGradientEstimator est(vehicle::VehicleParams{});
  const auto e = est.estimate();
  EXPECT_DOUBLE_EQ(e.grade_rad, 0.0);
  EXPECT_EQ(e.lane_changes_detected, 0u);
  EXPECT_TRUE(est.lane_changes().empty());
}

TEST(OnlineEstimator, OdometryAccumulates) {
  const Scenario sc = make_scenario(7);
  OnlineGradientEstimator est(vehicle::VehicleParams{});
  (void)stream_trace(est, sc.trace);
  const auto e = est.estimate();
  EXPECT_NEAR(e.odometry_m, sc.trip.distance_m(),
              0.1 * sc.trip.distance_m());
}

// ---------------- barometer-augmented EKF ------------------------------

TEST(GradeEkfBaro, RunsAndStaysFinite) {
  const Scenario sc = make_scenario(8, 0.0);
  const auto aligned = align_states(sc.trace);
  const auto meas = velocity_from_canbus(sc.trace);
  const auto track = run_grade_ekf_with_baro(
      "canbus+baro", aligned.t, aligned.accel_forward, meas,
      sc.trace.barometer_alt, vehicle::VehicleParams{});
  ASSERT_FALSE(track.t.empty());
  for (double g : track.grade) EXPECT_TRUE(std::isfinite(g));
  const auto stats = evaluate_track(track, sc.trip);
  EXPECT_LT(stats.median_abs_deg, 0.6);
}

TEST(GradeEkfBaro, BarometerAddsLittleOverVelocityChannel) {
  // The paper's design rationale: the barometer's metre-level noise means
  // the altitude channel cannot beat the velocity-deviation channel. The
  // augmented filter should be within a small factor of the plain one —
  // not dramatically better.
  const Scenario sc = make_scenario(9, 0.0);
  const auto aligned = align_states(sc.trace);
  const auto meas = velocity_from_canbus(sc.trace);
  const auto plain = run_grade_ekf("canbus", aligned.t,
                                   aligned.accel_forward, meas,
                                   vehicle::VehicleParams{});
  const auto baro = run_grade_ekf_with_baro(
      "canbus+baro", aligned.t, aligned.accel_forward, meas,
      sc.trace.barometer_alt, vehicle::VehicleParams{});
  const double e_plain = evaluate_track(plain, sc.trip).mae_rad;
  const double e_baro = evaluate_track(baro, sc.trip).mae_rad;
  EXPECT_LT(e_baro, 1.5 * e_plain);
  EXPECT_GT(e_baro, 0.5 * e_plain);
}

// ---- timestamp admission policy regressions ----------------------------

TEST(OnlineEstimator, GateRejectedOutlierDoesNotAdvanceStreamClock) {
  // A spoofed sample must not shadow a legitimate one at the same epoch:
  // the innovation gate rejects without consuming the timestamp.
  OnlineGradientEstimator est(vehicle::VehicleParams{});
  est.push_canbus(0.0, 10.0);  // seeds the filter
  est.push_canbus(0.1, 60.0);  // wildly implausible: gate-rejected
  SourceDiagnostics d = est.source_diagnostics(VelocitySource::kCanbus);
  EXPECT_EQ(d.gate_rejected, 1u);
  EXPECT_EQ(d.accepted, 1u);
  // The same epoch is still available to the real measurement...
  est.push_canbus(0.1, 10.05);
  EXPECT_EQ(est.source_diagnostics(VelocitySource::kCanbus).accepted, 2u);
  // ... and once consumed, a replay of it is a duplicate.
  est.push_canbus(0.1, 10.05);
  EXPECT_EQ(est.source_diagnostics(VelocitySource::kCanbus).accepted, 2u);
}

#if RGE_OBS_ENABLED
TEST(OnlineEstimator, InvalidAndDuplicateRejectionsCountedSeparately) {
  obs::reset_all();
  obs::set_enabled(true);
  {
    OnlineGradientEstimator est(vehicle::VehicleParams{});
    sensors::GpsFix invalid;
    invalid.t = 0.5;
    invalid.speed_mps = 12.0;
    invalid.valid = false;  // receiver-flagged outage
    est.push_gps(invalid);
    EXPECT_FALSE(
        est.source_diagnostics(VelocitySource::kGps).seeded);  // dropped
    est.push_speedometer(1.0, 10.0);
    est.push_speedometer(1.0, 10.0);  // replay of a consumed epoch
    est.push_speedometer(0.5, 10.0);  // out-of-order delivery
  }
  const auto snap = obs::Registry::global().snapshot();
  obs::set_enabled(false);
  EXPECT_EQ(snap.counters.at("online.rejected_invalid"), 1);
  EXPECT_EQ(snap.counters.at("online.rejected_duplicate_t"), 1);
  EXPECT_EQ(snap.counters.at("online.rejected_nonmonotonic"), 1);
}
#endif

TEST(GradeEkfBaro, Validation) {
  EXPECT_THROW(run_grade_ekf_with_baro("x", std::vector<double>{0.0, 1.0},
                                       std::vector<double>{0.0}, {}, {},
                                       vehicle::VehicleParams{}),
               std::invalid_argument);
  const auto empty = run_grade_ekf_with_baro(
      "x", std::vector<double>{}, std::vector<double>{}, {}, {},
      vehicle::VehicleParams{});
  EXPECT_TRUE(empty.t.empty());
}

}  // namespace
}  // namespace rge::core
