// Unit tests for the dense matrix/vector algebra.
#include "math/matrix.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/rng.hpp"

namespace rge::math {
namespace {

TEST(Vec, ConstructionAndAccess) {
  Vec v(3, 2.0);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  Vec w{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(w[2], 3.0);
  EXPECT_TRUE(Vec().empty());
  EXPECT_THROW(w.at(3), std::out_of_range);
}

TEST(Vec, Arithmetic) {
  const Vec a{1.0, 2.0};
  const Vec b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec{0.5, 1.0}));
  EXPECT_EQ(-a, (Vec{-1.0, -2.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ((Vec{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec{-3.0, 2.0}).inf_norm(), 3.0);
}

TEST(Vec, DimensionMismatchThrows) {
  Vec a{1.0, 2.0};
  const Vec b{1.0};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW((void)a.dot(b), std::invalid_argument);
}

TEST(Mat, ConstructionAndShape) {
  const Mat m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_FALSE(m.square());
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  EXPECT_THROW(Mat({{1.0, 2.0}, {3.0}}), std::invalid_argument);
  EXPECT_THROW(m.at(3, 0), std::out_of_range);
}

TEST(Mat, IdentityDiagColumnRow) {
  const Mat i = Mat::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Mat d = Mat::diag(Vec{2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
  EXPECT_EQ(Mat::column(Vec{1.0, 2.0}).rows(), 2u);
  EXPECT_EQ(Mat::row(Vec{1.0, 2.0}).cols(), 2u);
}

TEST(Mat, Multiply) {
  const Mat a{{1.0, 2.0}, {3.0, 4.0}};
  const Mat b{{5.0, 6.0}, {7.0, 8.0}};
  const Mat c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  const Vec v = a * Vec{1.0, 1.0};
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
  EXPECT_THROW(a * Mat(3, 3), std::invalid_argument);
  EXPECT_THROW(a * Vec{1.0}, std::invalid_argument);
}

TEST(Mat, TransposeTraceNorm) {
  const Mat a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Mat at = a.transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
  EXPECT_DOUBLE_EQ((Mat{{1.0, 9.0}, {0.0, 2.0}}).trace(), 3.0);
  EXPECT_THROW(a.trace(), std::invalid_argument);
  EXPECT_DOUBLE_EQ((Mat{{3.0, 0.0}, {0.0, 4.0}}).norm(), 5.0);
}

TEST(Mat, InverseKnown) {
  const Mat a{{4.0, 7.0}, {2.0, 6.0}};
  const Mat inv = a.inverse();
  EXPECT_NEAR(inv(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(inv(0, 1), -0.7, 1e-12);
  EXPECT_NEAR(inv(1, 0), -0.2, 1e-12);
  EXPECT_NEAR(inv(1, 1), 0.4, 1e-12);
  EXPECT_TRUE((a * inv).approx_equal(Mat::identity(2), 1e-12));
}

TEST(Mat, SingularInverseThrows) {
  const Mat s{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(s.inverse(), SingularMatrixError);
  EXPECT_DOUBLE_EQ(s.determinant(), 0.0);
}

TEST(Mat, DeterminantKnown) {
  EXPECT_DOUBLE_EQ((Mat{{2.0}}).determinant(), 2.0);
  EXPECT_DOUBLE_EQ((Mat{{1.0, 2.0}, {3.0, 4.0}}).determinant(), -2.0);
  const Mat a{{6.0, 1.0, 1.0}, {4.0, -2.0, 5.0}, {2.0, 8.0, 7.0}};
  EXPECT_NEAR(a.determinant(), -306.0, 1e-9);
}

TEST(Mat, CholeskyKnown) {
  const Mat a{{4.0, 2.0}, {2.0, 5.0}};
  const Mat l = a.cholesky();
  EXPECT_TRUE((l * l.transpose()).approx_equal(a, 1e-12));
  EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
  EXPECT_THROW((Mat{{-1.0}}).cholesky(), SingularMatrixError);
  EXPECT_THROW((Mat{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}}).cholesky(),
               std::invalid_argument);
}

TEST(Mat, SolveKnown) {
  const Mat a{{3.0, 2.0}, {1.0, 2.0}};
  const Vec x = a.solve(Vec{12.0, 8.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_THROW(a.solve(Vec{1.0}), std::invalid_argument);
  EXPECT_THROW((Mat{{0.0, 0.0}, {0.0, 0.0}}).solve(Vec{1.0, 1.0}),
               SingularMatrixError);
}

TEST(Mat, SolveMatrixRhs) {
  const Mat a{{2.0, 0.0}, {0.0, 4.0}};
  const Mat x = a.solve(Mat{{2.0, 4.0}, {8.0, 12.0}});
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 3.0, 1e-12);
}

TEST(Mat, Symmetrize) {
  Mat a{{1.0, 2.0}, {4.0, 1.0}};
  a.symmetrize();
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 3.0);
}

TEST(Mat, OuterAndQuadraticForm) {
  const Mat o = outer(Vec{1.0, 2.0}, Vec{3.0, 4.0});
  EXPECT_DOUBLE_EQ(o(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(o(0, 1), 4.0);
  const Mat a{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_DOUBLE_EQ(quadratic_form(a, Vec{1.0, 2.0}), 14.0);
}

// Property-style sweep: random well-conditioned matrices invert and solve
// consistently across sizes.
class MatrixRandomTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatrixRandomTest, InverseRoundTrip) {
  const std::size_t n = GetParam();
  Rng rng(1234 + n);
  Mat a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += static_cast<double>(n);  // diagonally dominant
  }
  const Mat inv = a.inverse();
  EXPECT_TRUE((a * inv).approx_equal(Mat::identity(n), 1e-9));
  EXPECT_TRUE((inv * a).approx_equal(Mat::identity(n), 1e-9));
}

TEST_P(MatrixRandomTest, SolveMatchesInverse) {
  const std::size_t n = GetParam();
  Rng rng(99 + n);
  Mat a(n, n);
  Vec b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += static_cast<double>(n);
    b[i] = rng.uniform(-5.0, 5.0);
  }
  const Vec x = a.solve(b);
  const Vec x2 = a.inverse() * b;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x2[i], 1e-9);
  // Residual check.
  const Vec r = a * x - b;
  EXPECT_LT(r.inf_norm(), 1e-9);
}

TEST_P(MatrixRandomTest, CholeskyOfGramMatrix) {
  const std::size_t n = GetParam();
  Rng rng(7 + n);
  Mat g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) g(i, j) = rng.uniform(-1.0, 1.0);
  }
  Mat spd = g * g.transpose();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;
  const Mat l = spd.cholesky();
  EXPECT_TRUE((l * l.transpose()).approx_equal(spd, 1e-9));
  // Determinant from Cholesky: det = prod(l_ii)^2.
  double det_chol = 1.0;
  for (std::size_t i = 0; i < n; ++i) det_chol *= l(i, i);
  det_chol *= det_chol;
  EXPECT_NEAR(spd.determinant() / det_chol, 1.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixRandomTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12));

}  // namespace
}  // namespace rge::math
