// Perf-tier guards for the observability layer (ctest -L perf):
//   * the runtime-disabled instrumentation path must stay within a hard
//     per-site cost budget (it guards every hot loop in the repo);
//   * an instrumented scenario run must actually emit the bench metrics
//     snapshot and a Chrome trace with the expected spans.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/obs.hpp"
#include "testing/harness.hpp"
#include "testing/scenario.hpp"

namespace {

double ns_per_op(std::int64_t total_ns, int iters) {
  return static_cast<double>(total_ns) / static_cast<double>(iters);
}

TEST(ObsPerf, DisabledCounterPathWithinBudget) {
  rge::obs::set_enabled(false);
  constexpr int kIters = 2'000'000;
  // Warm the branch predictor / instruction cache.
  for (int i = 0; i < 10'000; ++i) OBS_COUNT("perf.disabled_site", 1);

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    OBS_COUNT("perf.disabled_site", 1);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  const double per_op = ns_per_op(ns, kIters);

  // A disabled site is one relaxed atomic load + branch: single-digit ns
  // on any machine this runs on. The budget is ~20x that measured cost so
  // the guard only fires on a real regression (e.g. someone putting a
  // lock or a clock read on the disabled path), not on scheduler noise.
  EXPECT_LT(per_op, 60.0) << per_op << " ns per disabled OBS_COUNT";

  // The loop above must not have recorded anything.
  if (rge::obs::kCompiledIn) {
    const std::string json = rge::obs::metrics_json();
    EXPECT_EQ(json.find("perf.disabled_site"), std::string::npos);
  }
}

TEST(ObsPerf, DisabledSpanPathWithinBudget) {
  rge::obs::set_enabled(false);
  rge::obs::set_tracing(false);
  constexpr int kIters = 1'000'000;
  for (int i = 0; i < 10'000; ++i) {
    OBS_SPAN("perf.disabled_span");
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    OBS_SPAN("perf.disabled_span");
  }
  const auto t1 = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  const double per_op = ns_per_op(ns, kIters);
  // A span with tracing off is a flag load and a sentinel store.
  EXPECT_LT(per_op, 60.0) << per_op << " ns per disabled OBS_SPAN";
}

#if RGE_OBS_ENABLED
TEST(ObsPerf, EnabledCounterPathStaysCheap) {
  rge::obs::reset_all();
  rge::obs::set_enabled(true);
  constexpr int kIters = 1'000'000;
  for (int i = 0; i < 10'000; ++i) OBS_COUNT("perf.enabled_site", 1);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    OBS_COUNT("perf.enabled_site", 1);
  }
  const auto t1 = std::chrono::steady_clock::now();
  rge::obs::set_enabled(false);
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  const double per_op = ns_per_op(ns, kIters);
  // Enabled = one relaxed fetch_add into a thread-local shard. Budget is
  // generous; the point is to catch an accidental mutex on the hot path.
  EXPECT_LT(per_op, 200.0) << per_op << " ns per enabled OBS_COUNT";
  rge::obs::reset_all();
}

TEST(ObsPerf, InstrumentedScenarioRunEmitsArtifacts) {
  const std::string dir = ::testing::TempDir();
  const std::string bench = dir + "rge_perf_bench.json";
  const std::string metrics = dir + "rge_perf_bench_metrics.json";
  const std::string trace = dir + "rge_perf_trace.json";

  rge::testing::HarnessOptions opts;
  opts.scenarios = {rge::testing::scenario_matrix().front().name};
  opts.bench_out = bench;
  opts.trace_out = trace;
  opts.thread_counts = {2};
  opts.run_faults = false;

  std::ostringstream log;
  const int failures = rge::testing::run_harness(opts, log);
  EXPECT_EQ(failures, 0) << log.str();

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };

  // Metrics snapshot: pipeline + pool counters from the run.
  const std::string metrics_json = slurp(metrics);
  ASSERT_FALSE(metrics_json.empty()) << "missing " << metrics;
  EXPECT_NE(metrics_json.find("\"pipeline.trips\""), std::string::npos);
  EXPECT_NE(metrics_json.find("\"pool.tasks_submitted\""),
            std::string::npos);

  // Chrome trace: pipeline stage spans nested inside the trip span, plus
  // the scenario-level span from the harness.
  const std::string trace_json = slurp(trace);
  ASSERT_FALSE(trace_json.empty()) << "missing " << trace;
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"name\":\"pipeline.trip\""),
            std::string::npos);
  EXPECT_NE(trace_json.find("\"name\":\"pipeline.ekf\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"name\":\"scenario."), std::string::npos);

  std::remove(bench.c_str());
  std::remove(metrics.c_str());
  std::remove(trace.c_str());
}
#endif

}  // namespace
