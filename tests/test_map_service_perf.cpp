// Perf-tier guards for the sharded map service (ctest -L perf):
//
//   * deterministic batch ingest of a 2,000-vehicle fleet across 8 shards
//     on a 4-thread pool must sustain >= 1M fixes/sec (conservative: the
//     bench measures tens of millions);
//   * publish() — per-shard finalize plus the ordered merge and pointer
//     swap — must come in under 250 ms at p99 on the city network;
//   * snapshot() is the reader path (shared_ptr copy under a pointer
//     mutex) and must stay under 200 us at p99;
//   * the published sharded map must be bit-identical to a single-shard
//     serial service fed the same uploads;
//   * per-shard obs counters (service.shard<k>.tracks/.samples) must
//     mirror the shards' local stats.
//
// The measured numbers are written to BENCH_map_service.json (override
// the path with RGE_BENCH_MAP_SERVICE_OUT) as the repo's perf-trajectory
// artifact for this workload.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "math/stats.hpp"
#include "obs/obs.hpp"
#include "road/network.hpp"
#include "runtime/thread_pool.hpp"
#include "service/map_service.hpp"
#include "testing/json.hpp"

namespace rge::service {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(const Clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

TrackUpload synth_upload(const road::RoadNetwork& net, std::uint32_t vehicle,
                         std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> pick(0, net.size() - 1);
  const auto road_id = static_cast<RoadId>(pick(rng));
  const road::Road& road = net.roads()[road_id].road;
  const double len = road.length_m();
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const double s0 = u(rng) * std::max(0.0, len - 250.0);
  const double s1 = std::min(len, s0 + 250.0 + u(rng) * (len - s0 - 250.0));
  const auto n =
      std::max<std::size_t>(16, static_cast<std::size_t>((s1 - s0) / 5.0));

  TrackUpload up;
  up.road = road_id;
  up.track.source = "veh-" + std::to_string(vehicle);
  std::uniform_real_distribution<double> var(1e-5, 4e-5);
  up.track.t.resize(n);
  up.track.s.resize(n);
  up.track.grade.resize(n);
  up.track.grade_var.resize(n);
  up.track.speed.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(n - 1);
    const double s = s0 + f * (s1 - s0);
    up.track.s[i] = s;
    up.track.t[i] = s / 12.5;
    up.track.grade[i] = road.grade_at(s);
    up.track.grade_var[i] = var(rng);
    up.track.speed[i] = 12.5;
  }
  return up;
}

void expect_views_identical(const RoadView& a, const RoadView& b,
                            std::size_t road) {
  ASSERT_EQ(a.cells, b.cells) << "road " << road;
  ASSERT_EQ(a.coverage, b.coverage) << "road " << road;
  ASSERT_EQ(a.track.grade, b.track.grade) << "road " << road;
  ASSERT_EQ(a.track.grade_var, b.track.grade_var) << "road " << road;
  ASSERT_EQ(a.track.speed, b.track.speed) << "road " << road;
  ASSERT_EQ(a.track.t, b.track.t) << "road " << road;
  ASSERT_EQ(a.track.s, b.track.s) << "road " << road;
}

TEST(MapServicePerf, CityFleetBudgets) {
  obs::set_enabled(true);

  const road::RoadNetwork network = road::make_city_network(2019);
  MapServiceConfig cfg;
  cfg.n_shards = 8;
  cfg.tile_length_m = 2000.0;
  cfg.fusion.distance_step_m = 5.0;
  MapService svc(network, cfg);

  constexpr std::size_t kFleet = 2000;
  constexpr std::size_t kBatch = 200;
  std::vector<TrackUpload> fleet;
  fleet.reserve(kFleet);
  std::mt19937 rng(42);
  std::size_t total_fixes = 0;
  for (std::size_t v = 0; v < kFleet; ++v) {
    fleet.push_back(synth_upload(network, static_cast<std::uint32_t>(v), rng));
    total_fixes += fleet.back().track.s.size();
  }

  // ---- ingest throughput + interleaved publish latency ----------------
  runtime::ThreadPool pool(4);
  std::vector<double> publish_ms;
  double ingest_ms_total = 0.0;
  for (std::size_t b = 0; b < kFleet / kBatch; ++b) {
    const std::vector<TrackUpload> batch(
        fleet.begin() + static_cast<std::ptrdiff_t>(b * kBatch),
        fleet.begin() + static_cast<std::ptrdiff_t>((b + 1) * kBatch));
    const auto t_in = Clock::now();
    svc.ingest(batch, &pool);
    ingest_ms_total += ms_since(t_in);
    const auto t_pub = Clock::now();
    svc.publish(&pool);
    publish_ms.push_back(ms_since(t_pub));
  }
  const double fixes_per_sec =
      static_cast<double>(total_fixes) / (ingest_ms_total / 1000.0);
  const double publish_p99 = math::percentile(publish_ms, 0.99);

  // ---- reader latency -------------------------------------------------
  std::vector<double> snapshot_us;
  for (int i = 0; i < 2000; ++i) {
    const auto t0 = Clock::now();
    const auto snap = svc.snapshot();
    snapshot_us.push_back(1000.0 * ms_since(t0));
    ASSERT_GT(snap->epoch, 0u);
  }
  const double snapshot_p99 = math::percentile(snapshot_us, 0.99);

  // ---- bit-identity vs single-shard serial fusion ---------------------
  MapServiceConfig ref_cfg = cfg;
  ref_cfg.n_shards = 1;
  MapService ref(network, ref_cfg);
  ref.ingest(fleet);
  ref.publish();
  const auto sharded = svc.snapshot();
  const auto serial = ref.snapshot();
  ASSERT_EQ(sharded->roads.size(), serial->roads.size());
  for (std::size_t r = 0; r < serial->roads.size(); ++r) {
    expect_views_identical(sharded->roads[r], serial->roads[r], r);
  }

  // ---- per-shard obs counters mirror the local stats ------------------
  const auto obs_snap = obs::Registry::global().snapshot();
  std::uint64_t tracks_total = 0;
  for (const auto& st : svc.shard_stats()) {
    tracks_total += st.tracks_ingested;
    const std::string prefix = "service.shard" + std::to_string(st.shard);
    const auto tracks_it = obs_snap.counters.find(prefix + ".tracks");
    const auto samples_it = obs_snap.counters.find(prefix + ".samples");
    ASSERT_NE(tracks_it, obs_snap.counters.end()) << prefix;
    ASSERT_NE(samples_it, obs_snap.counters.end()) << prefix;
    // >= because the registry is process-global: an earlier test (or a
    // previous service instance) may have bumped the same names.
    EXPECT_GE(tracks_it->second,
              static_cast<std::int64_t>(st.tracks_ingested));
    EXPECT_GE(samples_it->second,
              static_cast<std::int64_t>(st.samples_ingested));
  }
  EXPECT_GE(tracks_total, kFleet);  // every upload hit at least one shard

  // ---- budgets --------------------------------------------------------
  EXPECT_GE(fixes_per_sec, 1e6)
      << "ingest " << ingest_ms_total << " ms for " << total_fixes
      << " fixes";
  EXPECT_LE(publish_p99, 250.0) << "publish p99 " << publish_p99 << " ms";
  EXPECT_LE(snapshot_p99, 200.0) << "snapshot p99 " << snapshot_p99 << " us";

  // ---- perf-trajectory artifact ---------------------------------------
  testing::Json::Object doc;
  doc["workload"] = testing::Json::Object{
      {"n_vehicles", kFleet},
      {"total_fixes", total_fixes},
      {"n_roads", network.size()},
      {"n_tiles", svc.n_tiles()},
      {"n_shards", svc.n_shards()},
      {"tile_length_m", cfg.tile_length_m},
      {"grid_step_m", cfg.fusion.distance_step_m},
      {"batch_size", kBatch},
      {"pool_threads", pool.size()},
  };
  doc["ingest"] = testing::Json::Object{
      {"sharded_ms", ingest_ms_total},
      {"sharded_fixes_per_sec", fixes_per_sec},
      {"budget_min_fixes_per_sec", 1e6},
  };
  doc["publish_latency_ms"] = testing::Json::Object{
      {"p50", math::percentile(publish_ms, 0.5)},
      {"p90", math::percentile(publish_ms, 0.9)},
      {"p99", publish_p99},
      {"budget_p99_ms", 250.0},
  };
  doc["snapshot_latency_us"] = testing::Json::Object{
      {"p50", math::percentile(snapshot_us, 0.5)},
      {"p99", snapshot_p99},
      {"budget_p99_us", 200.0},
  };
  const char* out = std::getenv("RGE_BENCH_MAP_SERVICE_OUT");
  testing::write_json_file(testing::Json(doc),
                           out != nullptr ? out : "BENCH_map_service.json");
}

}  // namespace
}  // namespace rge::service
