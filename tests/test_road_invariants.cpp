// Property/fuzz tests: every road the builder or the generators produce
// must satisfy structural invariants regardless of the (seeded) random
// section mix.
#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"
#include "math/rng.hpp"
#include "road/network.hpp"
#include "road/road.hpp"

namespace rge::road {
namespace {

using math::deg2rad;

/// Check the invariants every Road must satisfy.
void check_road_invariants(const Road& r, double max_grade_rad) {
  const auto& s = r.samples_s();
  ASSERT_GE(s.size(), 2u);
  // Arc length strictly increases and matches length_m().
  for (std::size_t i = 1; i < s.size(); ++i) {
    ASSERT_GT(s[i], s[i - 1]);
  }
  EXPECT_DOUBLE_EQ(r.length_m(), s.back());

  // Grades bounded; elevation equals the integral of sin(grade).
  double z = 0.0;
  const auto& grade = r.samples_grade();
  const auto& elev = r.samples_elevation();
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_LE(std::abs(grade[i]), max_grade_rad + 1e-9);
    z += std::sin(grade[i]) * (s[i] - s[i - 1]);
    EXPECT_NEAR(elev[i], z, 0.02 * s[i] + 0.5) << "i=" << i;
  }

  // Heading is continuous (unwrapped): no jumps beyond what one sample's
  // curvature could produce.
  const auto& heading = r.samples_heading();
  for (std::size_t i = 1; i < heading.size(); ++i) {
    EXPECT_LT(std::abs(heading[i] - heading[i - 1]), 0.3)
        << "heading jump at i=" << i;
  }

  // Sections tile the road.
  const auto& secs = r.sections();
  ASSERT_FALSE(secs.empty());
  EXPECT_NEAR(secs.front().start_s_m, 0.0, 1e-9);
  for (std::size_t i = 1; i < secs.size(); ++i) {
    EXPECT_NEAR(secs[i].start_s_m, secs[i - 1].end_s_m, 1e-9);
  }
  EXPECT_NEAR(secs.back().end_s_m, r.length_m(), 1e-6);

  // Lane counts valid everywhere.
  for (double q = 0.0; q < r.length_m(); q += 37.0) {
    EXPECT_GE(r.lanes_at(q), 1);
    EXPECT_LE(r.lanes_at(q), 4);
  }
}

class RoadBuilderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoadBuilderFuzz, RandomSectionMixHoldsInvariants) {
  math::Rng rng(GetParam());
  RoadBuilder b("fuzz-" + std::to_string(GetParam()),
                rng.uniform(0.5, 2.0));
  b.set_initial_heading(rng.uniform(-math::kPi, math::kPi));
  double prev_grade = 0.0;
  const int n_sections = static_cast<int>(rng.uniform_int(1, 12));
  for (int i = 0; i < n_sections; ++i) {
    SectionSpec spec;
    spec.length_m = rng.uniform(20.0, 600.0);
    spec.grade_start_rad = prev_grade;
    spec.grade_end_rad = deg2rad(rng.uniform(-8.0, 8.0));
    spec.heading_change_rad = deg2rad(rng.uniform(-90.0, 90.0));
    spec.lanes = static_cast<int>(rng.uniform_int(1, 3));
    b.add_section(spec);
    prev_grade = spec.grade_end_rad;
  }
  const Road r = b.build();
  check_road_invariants(r, deg2rad(8.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoadBuilderFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(NetworkInvariants, Table3RouteHoldsInvariants) {
  check_road_invariants(make_table3_route(2019), deg2rad(5.0));
  check_road_invariants(make_table3_route(1), deg2rad(5.0));
}

TEST(NetworkInvariants, CityRoadsHoldInvariants) {
  const RoadNetwork net = make_city_network(11, 15.0);
  for (const auto& nr : net.roads()) {
    check_road_invariants(nr.road, deg2rad(6.6));
  }
}

}  // namespace
}  // namespace rge::road
