// Fleet batch estimator parity and determinism:
//   * every lane of OnlineEstimatorBatch / run_online_batch matches an
//     independent scalar OnlineGradientEstimator fed the same stream,
//     across the full scenario matrix (hostile worlds included) — bit-exact
//     with RGE_SIMD=OFF, pinned tolerance (masks and detections still
//     exactly equal) with RGE_SIMD=ON;
//   * fleet results are bit-identical for any thread count and any
//     lanes-per-block grouping, and invariant under lane permutation;
//   * the lockstep push_imu hot path performs zero heap allocations at
//     steady state (same global-new counting as the scalar test).
#include "core/online_estimator_batch.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "math/simd.hpp"
#include "obs/obs.hpp"
#include "testing/scenario.hpp"

// ---- allocation counting ------------------------------------------------
namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rge::core {
namespace {

/// Scalar reference stream: the exact merge order run_online_batch
/// documents (all GPS with t <= imu.t, then speedometer, then CAN, then
/// barometer, then the IMU sample).
void stream_trace(OnlineGradientEstimator& est,
                  const sensors::SensorTrace& trace) {
  std::size_t gi = 0;
  std::size_t si = 0;
  std::size_t ci = 0;
  std::size_t bi = 0;
  for (const auto& imu : trace.imu) {
    while (gi < trace.gps.size() && trace.gps[gi].t <= imu.t) {
      est.push_gps(trace.gps[gi++]);
    }
    while (si < trace.speedometer.size() &&
           trace.speedometer[si].t <= imu.t) {
      est.push_speedometer(trace.speedometer[si].t,
                           trace.speedometer[si].value);
      ++si;
    }
    while (ci < trace.canbus_speed.size() &&
           trace.canbus_speed[ci].t <= imu.t) {
      est.push_canbus(trace.canbus_speed[ci].t,
                      trace.canbus_speed[ci].value);
      ++ci;
    }
    while (bi < trace.barometer_alt.size() &&
           trace.barometer_alt[bi].t <= imu.t) {
      est.push_baro(trace.barometer_alt[bi].t,
                    trace.barometer_alt[bi].value);
      ++bi;
    }
    est.push_imu(imu);
  }
}

void expect_estimate_parity(const OnlineEstimate& batch,
                            const OnlineEstimate& scalar,
                            const std::string& label) {
  // Timestamps, detections and the defense-layer masks are discrete
  // decisions: exactly equal in every build mode.
  EXPECT_EQ(batch.t, scalar.t) << label;
  EXPECT_EQ(batch.in_lane_change, scalar.in_lane_change) << label;
  EXPECT_EQ(batch.lane_changes_detected, scalar.lane_changes_detected)
      << label;
  EXPECT_EQ(batch.sources_fused_mask, scalar.sources_fused_mask) << label;
  EXPECT_EQ(batch.sources_quarantined_mask, scalar.sources_quarantined_mask)
      << label;
  if constexpr (math::simd_enabled()) {
    const auto near = [&](double a, double b) {
      EXPECT_NEAR(a, b, 1e-6 * std::max(1.0, std::abs(b))) << label;
    };
    near(batch.grade_rad, scalar.grade_rad);
    near(batch.grade_var, scalar.grade_var);
    near(batch.speed_mps, scalar.speed_mps);
    near(batch.odometry_m, scalar.odometry_m);
  } else {
    EXPECT_EQ(batch.grade_rad, scalar.grade_rad) << label;
    EXPECT_EQ(batch.grade_var, scalar.grade_var) << label;
    EXPECT_EQ(batch.speed_mps, scalar.speed_mps) << label;
    EXPECT_EQ(batch.odometry_m, scalar.odometry_m) << label;
  }
}

void expect_lane_changes_equal(const std::vector<DetectedLaneChange>& a,
                               const std::vector<DetectedLaneChange>& b,
                               const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_start, b[i].t_start) << label;
    EXPECT_EQ(a[i].t_end, b[i].t_end) << label;
    EXPECT_EQ(a[i].type, b[i].type) << label;
  }
}

/// All scenario traces as one heterogeneous fleet (different lengths, so
/// lanes go inactive at different rounds).
std::vector<sensors::SensorTrace> scenario_fleet() {
  std::vector<sensors::SensorTrace> traces;
  for (const auto& spec : rge::testing::scenario_matrix()) {
    const auto world = rge::testing::build_world(spec);
    if (!world.traces.empty() && !world.traces.front().imu.empty()) {
      traces.push_back(world.traces.front());
    }
  }
  return traces;
}

TEST(OnlineEstimatorBatch, ScenarioMatrixParityVsScalarLanes) {
  const auto matrix = rge::testing::scenario_matrix();
  ASSERT_GE(matrix.size(), 10u);
  const auto traces = scenario_fleet();
  ASSERT_GE(traces.size(), 10u);

  const vehicle::VehicleParams params{};
  const OnlineEstimatorConfig config{};
  // Small blocks so the fleet spans several OnlineEstimatorBatch
  // instances and some blocks carry a partial lane set.
  const auto fleet = run_online_batch(traces, params, config,
                                      /*n_threads=*/2, /*lanes_per_block=*/5);
  ASSERT_EQ(fleet.size(), traces.size());

  for (std::size_t i = 0; i < traces.size(); ++i) {
    OnlineGradientEstimator scalar(params, config);
    stream_trace(scalar, traces[i]);
    const std::string label = "lane " + std::to_string(i);
    expect_estimate_parity(fleet[i].final_estimate, scalar.estimate(),
                           label);
    expect_lane_changes_equal(fleet[i].lane_changes, scalar.lane_changes(),
                              label);
  }
}

TEST(OnlineEstimatorBatch, DirectBatchMatchesScalarWithDiagnostics) {
  // Drive one OnlineEstimatorBatch directly (not through run_online_batch)
  // against scalar estimators, and compare the per-source defense
  // diagnostics lane by lane.
  const auto matrix = rge::testing::scenario_matrix();
  std::vector<sensors::SensorTrace> traces;
  for (const auto& spec : matrix) {
    const auto world = rge::testing::build_world(spec);
    if (!world.traces.empty() && !world.traces.front().imu.empty()) {
      traces.push_back(world.traces.front());
    }
    if (traces.size() == 4) break;
  }
  ASSERT_EQ(traces.size(), 4u);

  const vehicle::VehicleParams params{};
  const OnlineEstimatorConfig config{};
  OnlineEstimatorBatch batch(traces.size(), params, config);
  std::vector<std::size_t> gi(traces.size()), si(traces.size()),
      ci(traces.size()), bi(traces.size()), ii(traces.size());
  std::vector<sensors::ImuSample> samples(traces.size());
  std::vector<std::uint8_t> active(traces.size(), 1);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t l = 0; l < traces.size(); ++l) {
      const auto& tr = traces[l];
      if (ii[l] >= tr.imu.size()) {
        active[l] = 0;
        continue;
      }
      any = true;
      active[l] = 1;
      const auto& imu = tr.imu[ii[l]++];
      while (gi[l] < tr.gps.size() && tr.gps[gi[l]].t <= imu.t) {
        batch.push_gps(l, tr.gps[gi[l]++]);
      }
      while (si[l] < tr.speedometer.size() &&
             tr.speedometer[si[l]].t <= imu.t) {
        batch.push_speedometer(l, tr.speedometer[si[l]].t,
                               tr.speedometer[si[l]].value);
        ++si[l];
      }
      while (ci[l] < tr.canbus_speed.size() &&
             tr.canbus_speed[ci[l]].t <= imu.t) {
        batch.push_canbus(l, tr.canbus_speed[ci[l]].t,
                          tr.canbus_speed[ci[l]].value);
        ++ci[l];
      }
      while (bi[l] < tr.barometer_alt.size() &&
             tr.barometer_alt[bi[l]].t <= imu.t) {
        batch.push_baro(l, tr.barometer_alt[bi[l]].t,
                        tr.barometer_alt[bi[l]].value);
        ++bi[l];
      }
      samples[l] = imu;
    }
    if (any) batch.push_imu(samples, active);
  }

  for (std::size_t l = 0; l < traces.size(); ++l) {
    OnlineGradientEstimator scalar(params, config);
    stream_trace(scalar, traces[l]);
    const std::string label = "lane " + std::to_string(l);
    expect_estimate_parity(batch.estimate(l), scalar.estimate(), label);
    for (const auto which :
         {VelocitySource::kGps, VelocitySource::kSpeedometer,
          VelocitySource::kCanbus}) {
      const auto db = batch.source_diagnostics(l, which);
      const auto ds = scalar.source_diagnostics(which);
      EXPECT_EQ(db.seeded, ds.seeded) << label;
      EXPECT_EQ(db.quarantined, ds.quarantined) << label;
      EXPECT_EQ(db.accepted, ds.accepted) << label;
      EXPECT_EQ(db.gate_rejected, ds.gate_rejected) << label;
    }
  }
}

TEST(OnlineEstimatorBatch, FleetResultsDeterministicAcrossThreadsAndBlocks) {
  const auto traces = scenario_fleet();
  ASSERT_GE(traces.size(), 4u);
  const vehicle::VehicleParams params{};
  const auto ref = run_online_batch(traces, params, {}, 1, 0);
  // Lanes are independent, so any thread count and any lanes-per-block
  // grouping must reproduce the same bits — even in SIMD builds.
  const struct {
    std::size_t threads;
    std::size_t block;
  } grids[] = {{2, 3}, {8, 1}, {4, 64}, {0, 7}};
  for (const auto& g : grids) {
    const auto out = run_online_batch(traces, params, {}, g.threads, g.block);
    ASSERT_EQ(out.size(), ref.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::string label = "threads=" + std::to_string(g.threads) +
                                " block=" + std::to_string(g.block) +
                                " lane " + std::to_string(i);
      EXPECT_EQ(out[i].final_estimate.grade_rad,
                ref[i].final_estimate.grade_rad)
          << label;
      EXPECT_EQ(out[i].final_estimate.speed_mps,
                ref[i].final_estimate.speed_mps)
          << label;
      EXPECT_EQ(out[i].final_estimate.odometry_m,
                ref[i].final_estimate.odometry_m)
          << label;
      EXPECT_EQ(out[i].final_estimate.sources_fused_mask,
                ref[i].final_estimate.sources_fused_mask)
          << label;
      expect_lane_changes_equal(out[i].lane_changes, ref[i].lane_changes,
                                label);
    }
  }
}

TEST(OnlineEstimatorBatch, LanePermutationInvarianceBitExact) {
  auto traces = scenario_fleet();
  ASSERT_GE(traces.size(), 4u);
  const vehicle::VehicleParams params{};
  const auto ref = run_online_batch(traces, params, {}, 1, 0);

  // Reverse the fleet: lane i now carries trace n-1-i, inside one block so
  // vehicles genuinely swap SoA lanes.
  std::vector<sensors::SensorTrace> reversed(traces.rbegin(), traces.rend());
  const auto out =
      run_online_batch(reversed, params, {}, 1, reversed.size());
  ASSERT_EQ(out.size(), ref.size());
  const std::size_t n = ref.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = out[i].final_estimate;
    const auto& b = ref[n - 1 - i].final_estimate;
    EXPECT_EQ(a.grade_rad, b.grade_rad) << "lane " << i;
    EXPECT_EQ(a.grade_var, b.grade_var) << "lane " << i;
    EXPECT_EQ(a.speed_mps, b.speed_mps) << "lane " << i;
    EXPECT_EQ(a.odometry_m, b.odometry_m) << "lane " << i;
    EXPECT_EQ(a.sources_fused_mask, b.sources_fused_mask) << "lane " << i;
    expect_lane_changes_equal(out[i].lane_changes,
                              ref[n - 1 - i].lane_changes,
                              "lane " + std::to_string(i));
  }
}

TEST(OnlineEstimatorBatch, SteadyStateLockstepPushImuDoesNotAllocate) {
  rge::obs::set_enabled(false);
  constexpr std::size_t kLanes = 4;
  OnlineEstimatorBatch batch(kLanes, vehicle::VehicleParams{});

  // Straight constant-speed fleet: gyro jitter below the detector zero
  // band, CAN-bus speed at 1 Hz per lane (same pattern as the scalar
  // steady-state test).
  const double imu_dt = 0.02;
  double next_canbus_t = 0.0;
  std::vector<sensors::ImuSample> samples(kLanes);
  std::vector<std::uint8_t> active(kLanes, 1);
  const auto drive = [&](double t_begin, double t_end) {
    for (double t = t_begin; t < t_end; t += imu_dt) {
      if (t >= next_canbus_t) {
        for (std::size_t l = 0; l < kLanes; ++l) {
          batch.push_canbus(l, t, 15.0 + static_cast<double>(l));
        }
        next_canbus_t = t + 1.0;
      }
      for (std::size_t l = 0; l < kLanes; ++l) {
        samples[l].t = t;
        samples[l].accel_forward = 0.01;
        samples[l].gyro_z = 0.001 * std::sin(t + static_cast<double>(l));
      }
      batch.push_imu(samples, active);
    }
  };

  drive(0.0, 40.0);  // warm up past the detection-ring fill point

  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  drive(40.0, 60.0);
  const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << (after - before)
      << " allocations in the batch steady-state window";
}

TEST(OnlineEstimatorBatch, ShortSpansRejected) {
  OnlineEstimatorBatch batch(3, vehicle::VehicleParams{});
  std::vector<sensors::ImuSample> two(2);
  EXPECT_THROW(batch.push_imu(two), std::invalid_argument);
  std::vector<sensors::ImuSample> three(3);
  std::vector<std::uint8_t> short_mask(1, 1);
  EXPECT_THROW(batch.push_imu(three, short_mask), std::invalid_argument);
  EXPECT_THROW(batch.estimate(3), std::out_of_range);
}

TEST(OnlineEstimatorBatch, EmptyFleetReturnsEmpty) {
  EXPECT_TRUE(
      run_online_batch({}, vehicle::VehicleParams{}, {}, 1, 0).empty());
}

}  // namespace
}  // namespace rge::core
