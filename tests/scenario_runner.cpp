// CLI driver for the scenario-matrix regression harness (ctest label
// "scenario"). Exit code = number of failed checks.
//
//   scenario_runner [--scenario NAME]... [--goldens DIR] [--update-goldens]
//                   [--bench-out FILE] [--trace-out FILE] [--threads 1,2,8]
//                   [--no-faults] [--list]
//
// Typical invocations:
//   ctest -L scenario                          # what CI runs
//   scenario_runner --goldens tests/golden --update-goldens
//                                              # re-baseline after a
//                                              # legitimate accuracy change
// See EXPERIMENTS.md ("Scenario matrix") for how to read a golden diff.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "testing/harness.hpp"
#include "testing/scenario.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scenario NAME]... [--goldens DIR] "
               "[--update-goldens] [--bench-out FILE] [--trace-out FILE] "
               "[--threads a,b,c] [--no-faults] [--list]\n",
               argv0);
  return 2;
}

std::vector<std::size_t> parse_thread_counts(const std::string& arg) {
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::string tok =
        arg.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::stoul(tok)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  rge::testing::HarnessOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      opts.scenarios.emplace_back(next());
    } else if (arg == "--goldens") {
      opts.goldens_dir = next();
    } else if (arg == "--update-goldens") {
      opts.update_goldens = true;
    } else if (arg == "--bench-out") {
      opts.bench_out = next();
    } else if (arg == "--trace-out") {
      opts.trace_out = next();
    } else if (arg == "--threads") {
      opts.thread_counts = parse_thread_counts(next());
      if (opts.thread_counts.empty()) return usage(argv[0]);
    } else if (arg == "--no-faults") {
      opts.run_faults = false;
    } else if (arg == "--list") {
      for (const auto& spec : rge::testing::scenario_matrix()) {
        std::printf("%s\n", spec.name.c_str());
      }
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  return rge::testing::run_harness(opts, std::cout);
}
