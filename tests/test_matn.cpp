// Fixed-dimension matrix/EKF parity: MatN/VecN/EkfN must be operation-
// for-operation mirrors of the dynamic math::Mat / ExtendedKalmanFilter,
// so every result here is asserted bit-identical (==, not near) — the
// compile-time types are drop-in replacements on the hot paths, not
// approximations.
#include "math/matn.hpp"

#include <array>
#include <cmath>

#include <gtest/gtest.h>

#include "math/kalman.hpp"
#include "math/matrix.hpp"
#include "math/rng.hpp"

namespace rge::math {
namespace {

template <std::size_t R, std::size_t C>
Mat to_dyn(const MatN<R, C>& a) {
  Mat m(R, C);
  for (std::size_t i = 0; i < R; ++i) {
    for (std::size_t j = 0; j < C; ++j) m(i, j) = a(i, j);
  }
  return m;
}

template <std::size_t R, std::size_t C>
MatN<R, C> random_matn(Rng& rng) {
  MatN<R, C> m;
  for (std::size_t i = 0; i < R; ++i) {
    for (std::size_t j = 0; j < C; ++j) m(i, j) = rng.uniform(-2.0, 2.0);
  }
  return m;
}

TEST(MatN, MultiplyMatchesDynamicBitExact) {
  Rng rng(11);
  for (int rep = 0; rep < 50; ++rep) {
    const auto a = random_matn<3, 4>(rng);
    const auto b = random_matn<4, 2>(rng);
    const MatN<3, 2> c = a * b;
    const Mat ref = to_dyn(a) * to_dyn(b);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 2; ++j) EXPECT_EQ(c(i, j), ref(i, j));
    }
  }
}

TEST(MatN, MultiplySkipsStructuralZerosLikeDynamic) {
  // Mat::operator* skips a(i,k) == 0.0 contributions; the accumulation
  // order (and therefore the rounding) only matches if MatN does too.
  Rng rng(12);
  auto a = random_matn<4, 4>(rng);
  a(0, 1) = 0.0;
  a(2, 2) = 0.0;
  a(3, 0) = 0.0;
  const auto b = random_matn<4, 4>(rng);
  const MatN<4, 4> c = a * b;
  const Mat ref = to_dyn(a) * to_dyn(b);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(c(i, j), ref(i, j));
  }
}

TEST(MatN, VectorProductAndQuadraticFormMatchDynamic) {
  Rng rng(13);
  for (int rep = 0; rep < 50; ++rep) {
    const auto a = random_matn<3, 3>(rng);
    VecN<3> x;
    for (auto& v : x.d) v = rng.uniform(-1.0, 1.0);
    const VecN<3> y = a * x;
    const Vec ref = to_dyn(a) * Vec{x[0], x[1], x[2]};
    for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(y[i], ref[i]);
    EXPECT_EQ(quadratic_form_n(a, x),
              quadratic_form(to_dyn(a), Vec{x[0], x[1], x[2]}));
  }
}

TEST(MatN, InverseMatchesDynamicBitExact) {
  Rng rng(14);
  for (int rep = 0; rep < 50; ++rep) {
    auto a = random_matn<3, 3>(rng);
    for (std::size_t i = 0; i < 3; ++i) a(i, i) += 3.0;  // well-conditioned
    const MatN<3, 3> inv = a.inverse();
    const Mat ref = to_dyn(a).inverse();
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(inv(i, j), ref(i, j));
    }
  }
}

TEST(MatN, SolveMatchesDynamicBitExact) {
  Rng rng(15);
  for (int rep = 0; rep < 50; ++rep) {
    auto a = random_matn<4, 4>(rng);
    for (std::size_t i = 0; i < 4; ++i) a(i, i) += 4.0;
    VecN<4> b;
    for (auto& v : b.d) v = rng.uniform(-1.0, 1.0);
    const VecN<4> x = a.solve(b);
    const Vec ref = to_dyn(a).solve(Vec{b[0], b[1], b[2], b[3]});
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(x[i], ref[i]);
  }
}

TEST(MatN, SingularInverseAndSolveThrowLikeDynamic) {
  MatN<2, 2> a;  // zero matrix
  EXPECT_THROW(a.inverse(), SingularMatrixError);
  EXPECT_THROW(a.solve(VecN<2>{{1.0, 2.0}}), SingularMatrixError);
}

TEST(MatN, TransposeSymmetrizeIdentity) {
  Rng rng(16);
  const auto a = random_matn<2, 3>(rng);
  const MatN<3, 2> at = a.transpose();
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(at(j, i), a(i, j));
  }
  auto s = random_matn<3, 3>(rng);
  Mat sd = to_dyn(s);
  s.symmetrize();
  sd.symmetrize();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(s(i, j), sd(i, j));
  }
  const auto id = MatN<3, 3>::identity();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

// ---- EkfN vs the dynamic ExtendedKalmanFilter ---------------------------

/// Constant-velocity 2-state filter driven through the dynamic EKF and
/// EkfN<2> side by side; position measurements, one gated.
TEST(EkfN, PredictUpdateMatchesDynamicFilterBitExact) {
  const double dt = 0.1;
  Mat f_dyn(2, 2);
  f_dyn(0, 0) = 1.0;
  f_dyn(0, 1) = dt;
  f_dyn(1, 1) = 1.0;
  MatN<2, 2> f_fix;
  f_fix(0, 0) = 1.0;
  f_fix(0, 1) = dt;
  f_fix(1, 1) = 1.0;

  Mat q_dyn(2, 2);
  q_dyn(0, 0) = 1e-4;
  q_dyn(1, 1) = 1e-3;
  MatN<2, 2> q_fix;
  q_fix(0, 0) = 1e-4;
  q_fix(1, 1) = 1e-3;

  Mat h_dyn(1, 2);
  h_dyn(0, 0) = 1.0;
  MatN<1, 2> h_fix;
  h_fix(0, 0) = 1.0;
  Mat r_dyn(1, 1);
  r_dyn(0, 0) = 0.25;
  MatN<1, 1> r_fix;
  r_fix(0, 0) = 0.25;

  Mat p0 = Mat(2, 2);
  p0(0, 0) = 1.0;
  p0(1, 1) = 1.0;
  ExtendedKalmanFilter dyn(Vec{0.0, 1.0}, p0);

  MatN<2, 2> p0_fix;
  p0_fix(0, 0) = 1.0;
  p0_fix(1, 1) = 1.0;
  EkfN<2> fix(VecN<2>{{0.0, 1.0}}, p0_fix);

  ProcessModel process;
  process.f = [&](const Vec& x, const Vec&) { return f_dyn * x; };
  process.jacobian = [&](const Vec&, const Vec&) { return f_dyn; };
  process.q = q_dyn;
  MeasurementModel meas;
  meas.h = [&](const Vec& x) { return Vec{x[0]}; };
  meas.jacobian = [&](const Vec&) { return h_dyn; };
  meas.r = r_dyn;

  Rng rng(17);
  const double gate = 9.0;
  for (int k = 0; k < 200; ++k) {
    dyn.predict(process, Vec{});
    const VecN<2> x_next = f_fix * fix.state();
    fix.predict(x_next, f_fix, q_fix);

    // Every 4th measurement is an outlier the gate should reject in both.
    const double z =
        (k % 4 == 3) ? 1e3 : fix.state()[0] + rng.gaussian(0.0, 0.5);
    double nis_fix = 0.0;
    const UpdateResult res = dyn.update(meas, Vec{z}, gate);
    const bool ok_fix =
        fix.update(VecN<1>{{fix.state()[0]}}, h_fix, r_fix, VecN<1>{{z}},
                   gate, &nis_fix);
    ASSERT_EQ(res.accepted, ok_fix) << "step " << k;
    EXPECT_EQ(res.nis, nis_fix) << "step " << k;

    ASSERT_EQ(dyn.state().size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_EQ(fix.state()[i], dyn.state()[i]) << "step " << k;
      for (std::size_t j = 0; j < 2; ++j) {
        EXPECT_EQ(fix.covariance()(i, j), dyn.covariance()(i, j))
            << "step " << k;
      }
    }
  }
}

TEST(EkfN, SingularInnovationCovarianceThrows) {
  EkfN<1> fix;  // default state: zero covariance
  MatN<1, 1> h;  // zero observation matrix, zero R -> singular S
  MatN<1, 1> r;
  EXPECT_THROW(
      fix.update(VecN<1>{{0.0}}, h, r, VecN<1>{{1.0}}, 0.0, nullptr),
      SingularMatrixError);
}

}  // namespace
}  // namespace rge::math
