// Unit tests for descriptive statistics and error metrics.
#include "math/stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "math/rng.hpp"

namespace rge::math {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
  EXPECT_THROW(min_value(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, PercentileAndMedian) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 1.75);
  EXPECT_THROW(percentile(xs, 1.5), std::invalid_argument);
  EXPECT_THROW(percentile(std::vector<double>{}, 0.5),
               std::invalid_argument);
}

TEST(Stats, ErrorMetrics) {
  const std::vector<double> est{1.0, 2.0, 4.0};
  const std::vector<double> truth{1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(mae(est, truth), 1.0);
  EXPECT_NEAR(rmse(est, truth), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(max_abs_error(est, truth), 2.0);
  EXPECT_NEAR(bias(est, truth), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(mre(est, truth), 3.0 / 6.0);
  EXPECT_THROW(mae(est, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Stats, MreDegenerate) {
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(mre(zeros, zeros), 0.0);
  EXPECT_TRUE(std::isinf(mre(std::vector<double>{1.0, 1.0}, zeros)));
}

TEST(EmpiricalCdf, Basics) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0, 4.0});
  EXPECT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.prob_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.prob_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.prob_below(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 2.5);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(1.0), 4.0);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.gaussian());
  EmpiricalCdf cdf(xs);
  const auto curve = cdf.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second);
    EXPECT_LE(curve[i - 1].first, curve[i].first);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdf, EmptyBehaviour) {
  EmpiricalCdf cdf((std::vector<double>()));
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.prob_below(1.0), 0.0);
  EXPECT_THROW(cdf.value_at(0.5), std::logic_error);
  EXPECT_TRUE(cdf.curve(10).empty());
}

TEST(Histogram, CountsAndRange) {
  const std::vector<double> xs{0.0, 0.5, 1.0, 1.5, 2.0};
  const Histogram h = make_histogram(xs, 2);
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 2.0);
  EXPECT_EQ(h.total, 5u);
  EXPECT_EQ(h.counts[0], 2u);  // 0.0, 0.5
  EXPECT_EQ(h.counts[1], 3u);  // 1.0, 1.5, 2.0 (top edge in last bin)
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_TRUE(make_histogram({}, 4).counts.empty());
}

TEST(RunningStats, MatchesBatch) {
  Rng rng(77);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(3.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), 1000u);
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min_value(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_value(xs));
}

// Parameterized property: CDF value_at and prob_below are inverse-ish.
class CdfRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(CdfRoundTrip, QuantileProbConsistency) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(0.0, 10.0));
  EmpiricalCdf cdf(xs);
  const double p = GetParam();
  const double v = cdf.value_at(p);
  EXPECT_NEAR(cdf.prob_below(v), p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, CdfRoundTrip,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace rge::math
