// Unit tests for gradient-track CSV serialization.
#include "core/track_io.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "math/rng.hpp"

namespace rge::core {
namespace {

GradeTrack make_track(std::size_t n, std::uint64_t seed) {
  GradeTrack tr;
  tr.source = "unit-test source";
  math::Rng rng(seed);
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    tr.t.push_back(0.1 * static_cast<double>(i));
    s += rng.uniform(0.5, 2.0);
    tr.s.push_back(s);
    tr.grade.push_back(rng.gaussian(0.0, 0.05));
    tr.grade_var.push_back(rng.uniform(1e-6, 1e-3));
    tr.speed.push_back(rng.uniform(5.0, 20.0));
  }
  return tr;
}

TEST(TrackIo, RoundTripBitExact) {
  const GradeTrack tr = make_track(500, 3);
  std::stringstream ss;
  write_track_csv(tr, ss);
  const GradeTrack back = read_track_csv(ss);
  EXPECT_EQ(back.source, tr.source);
  ASSERT_EQ(back.size(), tr.size());
  for (std::size_t i = 0; i < tr.size(); i += 13) {
    EXPECT_DOUBLE_EQ(back.t[i], tr.t[i]);
    EXPECT_DOUBLE_EQ(back.s[i], tr.s[i]);
    EXPECT_DOUBLE_EQ(back.grade[i], tr.grade[i]);
    EXPECT_DOUBLE_EQ(back.grade_var[i], tr.grade_var[i]);
    EXPECT_DOUBLE_EQ(back.speed[i], tr.speed[i]);
  }
}

TEST(TrackIo, EmptyTrackRoundTrips) {
  GradeTrack tr;
  tr.source = "empty";
  std::stringstream ss;
  write_track_csv(tr, ss);
  const GradeTrack back = read_track_csv(ss);
  EXPECT_EQ(back.source, "empty");
  EXPECT_EQ(back.size(), 0u);
}

TEST(TrackIo, FileRoundTrip) {
  const GradeTrack tr = make_track(50, 5);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rge_track_test.csv")
          .string();
  write_track_csv_file(tr, path);
  const GradeTrack back = read_track_csv_file(path);
  EXPECT_EQ(back.size(), tr.size());
  std::remove(path.c_str());
  EXPECT_THROW(read_track_csv_file("/nonexistent/rge_track.csv"),
               std::runtime_error);
  EXPECT_THROW(write_track_csv_file(tr, "/nonexistent/dir/track.csv"),
               std::runtime_error);
}

TEST(TrackIo, MalformedInputs) {
  {
    std::stringstream ss("not a track file\n");
    EXPECT_THROW(read_track_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("# rge-grade-track v1 source=x\nwrong,header\n");
    EXPECT_THROW(read_track_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss(
        "# rge-grade-track v1 source=x\nt,s,grade,grade_var,speed\n"
        "1.0,2.0,3.0\n");
    EXPECT_THROW(read_track_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss(
        "# rge-grade-track v1 source=x\nt,s,grade,grade_var,speed\n"
        "1.0,2.0,abc,0.1,10.0\n");
    EXPECT_THROW(read_track_csv(ss), std::runtime_error);
  }
  {
    // Blank lines are tolerated.
    std::stringstream ss(
        "# rge-grade-track v1 source=x\nt,s,grade,grade_var,speed\n\n"
        "1.0,2.0,0.01,0.1,10.0\n\n");
    const GradeTrack back = read_track_csv(ss);
    EXPECT_EQ(back.size(), 1u);
    EXPECT_DOUBLE_EQ(back.grade[0], 0.01);
  }
}

}  // namespace
}  // namespace rge::core
