// Unit tests for the lane-change maneuver generator.
#include "vehicle/lane_change.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"

namespace rge::vehicle {
namespace {

TEST(LaneChangeManeuver, Validation) {
  EXPECT_THROW(LaneChangeManeuver(LaneChangeDirection::kLeft, 0.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(LaneChangeManeuver(LaneChangeDirection::kLeft, 0.15, 0.0),
               std::invalid_argument);
  EXPECT_THROW(
      LaneChangeManeuver(LaneChangeDirection::kLeft, 0.15, 10.0, -1.0),
      std::invalid_argument);
  EXPECT_THROW(
      LaneChangeManeuver(LaneChangeDirection::kLeft, 0.15, 10.0, 3.65, 0.0),
      std::invalid_argument);
}

TEST(LaneChangeManeuver, LeftIsPositiveThenNegative) {
  const LaneChangeManeuver m(LaneChangeDirection::kLeft, 0.15, 10.0);
  const double t_quarter = m.duration_s() * 0.25;
  const double t_three_quarter = m.duration_s() * 0.75;
  EXPECT_GT(m.steering_rate(t_quarter), 0.0);
  EXPECT_LT(m.steering_rate(t_three_quarter), 0.0);
  EXPECT_NEAR(m.steering_rate(t_quarter), 0.15, 1e-12);  // peak
}

TEST(LaneChangeManeuver, RightIsMirrored) {
  const LaneChangeManeuver l(LaneChangeDirection::kLeft, 0.15, 10.0);
  const LaneChangeManeuver r(LaneChangeDirection::kRight, 0.15, 10.0);
  EXPECT_DOUBLE_EQ(l.duration_s(), r.duration_s());
  for (double f : {0.1, 0.3, 0.6, 0.9}) {
    const double t = f * l.duration_s();
    EXPECT_DOUBLE_EQ(l.steering_rate(t), -r.steering_rate(t));
    EXPECT_DOUBLE_EQ(l.heading_deviation(t), -r.heading_deviation(t));
  }
}

TEST(LaneChangeManeuver, ZeroOutsideWindow) {
  const LaneChangeManeuver m(LaneChangeDirection::kLeft, 0.15, 10.0);
  EXPECT_DOUBLE_EQ(m.steering_rate(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(m.steering_rate(m.duration_s() + 0.1), 0.0);
  EXPECT_DOUBLE_EQ(m.heading_deviation(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(m.heading_deviation(m.duration_s() + 0.1), 0.0);
}

TEST(LaneChangeManeuver, HeadingDeviationReturnsToZero) {
  const LaneChangeManeuver m(LaneChangeDirection::kLeft, 0.13, 12.0);
  // alpha integrates the steering pulse: zero at both ends, peak mid-way.
  EXPECT_NEAR(m.heading_deviation(m.duration_s() * 0.999), 0.0, 5e-3);
  EXPECT_GT(m.heading_deviation(m.duration_s() * 0.5), 0.0);
}

TEST(LaneChangeManeuver, HeadingDeviationMatchesNumericIntegral) {
  const LaneChangeManeuver m(LaneChangeDirection::kRight, 0.16, 9.0);
  double alpha = 0.0;
  const double dt = m.duration_s() / 2000.0;
  for (int i = 0; i < 1000; ++i) {  // integrate the first half
    alpha += m.steering_rate((i + 0.5) * dt) * dt;
  }
  EXPECT_NEAR(m.heading_deviation(m.duration_s() / 2.0), alpha, 1e-3);
}

TEST(LaneChangeManeuver, LateralDisplacementHitsLaneWidth) {
  for (double v : {5.0, 10.0, 18.0}) {
    const LaneChangeManeuver m(LaneChangeDirection::kLeft, 0.15, v);
    // Numeric small-angle lateral integral must equal the lane width.
    double lateral = 0.0;
    const int n = 4000;
    const double dt = m.duration_s() / n;
    double alpha = 0.0;
    for (int i = 0; i < n; ++i) {
      alpha += m.steering_rate((i + 0.5) * dt) * dt;
      lateral += v * std::sin(alpha) * dt;
    }
    EXPECT_NEAR(lateral, kLaneWidthM, 0.12) << "v=" << v;
    EXPECT_NEAR(m.nominal_lateral_displacement(), kLaneWidthM, 1e-6);
  }
}

TEST(LaneChangeManeuver, FasterDrivingShortensManeuver) {
  const LaneChangeManeuver slow(LaneChangeDirection::kLeft, 0.15, 5.0);
  const LaneChangeManeuver fast(LaneChangeDirection::kLeft, 0.15, 18.0);
  EXPECT_GT(slow.duration_s(), fast.duration_s());
  // T = sqrt(W/(v A I)) -> ratio sqrt(18/5).
  EXPECT_NEAR(slow.duration_s() / fast.duration_s(), std::sqrt(18.0 / 5.0),
              1e-9);
}

TEST(LaneChangeManeuver, StrongerSteeringShortensManeuver) {
  const LaneChangeManeuver soft(LaneChangeDirection::kLeft, 0.12, 10.0);
  const LaneChangeManeuver hard(LaneChangeDirection::kLeft, 0.20, 10.0);
  EXPECT_GT(soft.duration_s(), hard.duration_s());
}

TEST(DriverSteeringStyle, SamplesWithinBounds) {
  DriverSteeringStyle style;
  math::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double a = style.sample_peak_rate(rng);
    EXPECT_GE(a, style.peak_rate_min);
    EXPECT_LE(a, style.peak_rate_max);
  }
}

// Parameterized across speeds: durations stay within a plausible human
// range (2-8 s) for the paper's 15-65 km/h experiments.
class ManeuverDuration : public ::testing::TestWithParam<double> {};

TEST_P(ManeuverDuration, HumanPlausible) {
  const double speed_kmh = GetParam();
  const LaneChangeManeuver m(LaneChangeDirection::kLeft, 0.15,
                             speed_kmh / 3.6);
  EXPECT_GE(m.duration_s(), 2.0);
  EXPECT_LE(m.duration_s(), 8.0);
}

INSTANTIATE_TEST_SUITE_P(Speeds, ManeuverDuration,
                         ::testing::Values(15.0, 25.0, 40.0, 55.0, 65.0));

}  // namespace
}  // namespace rge::vehicle
