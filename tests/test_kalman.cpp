// Unit tests for the generic Extended Kalman Filter.
#include "math/kalman.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/rng.hpp"

namespace rge::math {
namespace {

// Simple 1-D constant state with noisy measurements.
ProcessModel constant_process(double q) {
  ProcessModel m;
  m.f = [](const Vec& x, const Vec&) { return x; };
  m.jacobian = [](const Vec& x, const Vec&) {
    return Mat::identity(x.size());
  };
  m.q = Mat{{q}};
  return m;
}

MeasurementModel direct_measurement(double r) {
  MeasurementModel m;
  m.h = [](const Vec& x) { return Vec{x[0]}; };
  m.jacobian = [](const Vec&) { return Mat{{1.0}}; };
  m.r = Mat{{r}};
  return m;
}

TEST(Ekf, ConstructionValidation) {
  EXPECT_THROW(ExtendedKalmanFilter(Vec{1.0, 2.0}, Mat::identity(3)),
               std::invalid_argument);
  ExtendedKalmanFilter f(Vec{1.0}, Mat{{2.0}});
  EXPECT_THROW(f.set_state(Vec{1.0, 2.0}, Mat{{1.0}}),
               std::invalid_argument);
}

TEST(Ekf, ConvergesToConstantTruth) {
  ExtendedKalmanFilter f(Vec{0.0}, Mat{{100.0}});
  const auto proc = constant_process(1e-6);
  const auto meas = direct_measurement(0.25);
  Rng rng(17);
  const double truth = 3.7;
  for (int i = 0; i < 300; ++i) {
    f.predict(proc, Vec{});
    f.update(meas, Vec{truth + rng.gaussian(0.0, 0.5)});
  }
  EXPECT_NEAR(f.state()[0], truth, 0.1);
  EXPECT_LT(f.covariance()(0, 0), 0.05);
}

TEST(Ekf, CovarianceShrinksWithUpdates) {
  ExtendedKalmanFilter f(Vec{0.0}, Mat{{10.0}});
  const auto proc = constant_process(0.0);
  const auto meas = direct_measurement(1.0);
  double prev = f.covariance()(0, 0);
  for (int i = 0; i < 5; ++i) {
    f.predict(proc, Vec{});
    f.update(meas, Vec{0.0});
    const double cur = f.covariance()(0, 0);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
  // Information form: after n updates with R=1 and P0=10,
  // P = 1/(1/10 + n) approximately.
  EXPECT_NEAR(prev, 1.0 / (0.1 + 5.0), 1e-9);
}

TEST(Ekf, GateRejectsOutliers) {
  ExtendedKalmanFilter f(Vec{0.0}, Mat{{1.0}});
  const auto proc = constant_process(1e-4);
  const auto meas = direct_measurement(0.01);
  // Settle near zero.
  for (int i = 0; i < 50; ++i) {
    f.predict(proc, Vec{});
    f.update(meas, Vec{0.0});
  }
  const double before = f.state()[0];
  const auto res = f.update(meas, Vec{100.0}, /*gate_nis=*/9.0);
  EXPECT_FALSE(res.accepted);
  EXPECT_DOUBLE_EQ(f.state()[0], before);  // state untouched
  // Without gating the same measurement moves the state.
  const auto res2 = f.update(meas, Vec{100.0}, /*gate_nis=*/0.0);
  EXPECT_TRUE(res2.accepted);
  EXPECT_GT(f.state()[0], before);
}

TEST(Ekf, NisIsSensible) {
  ExtendedKalmanFilter f(Vec{0.0}, Mat{{1.0}});
  const auto meas = direct_measurement(1.0);
  const auto res = f.update(meas, Vec{2.0});
  // innovation 2, S = P + R = 2 -> NIS = 4/2 = 2.
  EXPECT_NEAR(res.nis, 2.0, 1e-12);
  EXPECT_NEAR(res.innovation[0], 2.0, 1e-12);
  EXPECT_NEAR(res.innovation_cov(0, 0), 2.0, 1e-12);
}

TEST(Ekf, TracksRampWithProcessNoise) {
  // State random-walk model tracking a slow ramp.
  ExtendedKalmanFilter f(Vec{0.0}, Mat{{1.0}});
  const auto proc = constant_process(0.05);
  const auto meas = direct_measurement(0.5);
  Rng rng(4);
  double truth = 0.0;
  for (int i = 0; i < 500; ++i) {
    truth += 0.01;
    f.predict(proc, Vec{});
    f.update(meas, Vec{truth + rng.gaussian(0.0, 0.7)});
  }
  EXPECT_NEAR(f.state()[0], truth, 0.5);
}

TEST(Ekf, TwoStateCoupling) {
  // x = [position, velocity]; only position measured; velocity becomes
  // observable through the coupling — the same mechanism the gradient EKF
  // relies on.
  const double dt = 0.1;
  ProcessModel proc;
  proc.f = [dt](const Vec& x, const Vec&) {
    return Vec{x[0] + x[1] * dt, x[1]};
  };
  proc.jacobian = [dt](const Vec&, const Vec&) {
    return Mat{{1.0, dt}, {0.0, 1.0}};
  };
  proc.q = Mat{{1e-6, 0.0}, {0.0, 1e-6}};
  MeasurementModel meas;
  meas.h = [](const Vec& x) { return Vec{x[0]}; };
  meas.jacobian = [](const Vec&) { return Mat{{1.0, 0.0}}; };
  meas.r = Mat{{0.01}};

  ExtendedKalmanFilter f(Vec{0.0, 0.0}, Mat::diag(Vec{1.0, 4.0}));
  Rng rng(9);
  const double v_true = 1.5;
  double pos = 0.0;
  for (int i = 0; i < 400; ++i) {
    pos += v_true * dt;
    f.predict(proc, Vec{});
    f.update(meas, Vec{pos + rng.gaussian(0.0, 0.1)});
  }
  EXPECT_NEAR(f.state()[1], v_true, 0.05);
}

TEST(Ekf, DimensionValidation) {
  ExtendedKalmanFilter f(Vec{0.0, 0.0}, Mat::identity(2));
  ProcessModel bad;
  bad.f = [](const Vec& x, const Vec&) { return x; };
  bad.jacobian = [](const Vec&, const Vec&) { return Mat::identity(3); };
  bad.q = Mat::identity(2);
  EXPECT_THROW(f.predict(bad, Vec{}), std::invalid_argument);

  MeasurementModel badm;
  badm.h = [](const Vec&) { return Vec{0.0}; };
  badm.jacobian = [](const Vec&) { return Mat{{1.0}}; };  // wrong cols
  badm.r = Mat{{1.0}};
  EXPECT_THROW(f.update(badm, Vec{0.0}), std::invalid_argument);
}

TEST(Ekf, CovarianceStaysSymmetric) {
  ExtendedKalmanFilter f(Vec{0.0, 0.0}, Mat::diag(Vec{5.0, 3.0}));
  ProcessModel proc;
  proc.f = [](const Vec& x, const Vec&) {
    return Vec{x[0] + 0.1 * x[1], x[1]};
  };
  proc.jacobian = [](const Vec&, const Vec&) {
    return Mat{{1.0, 0.1}, {0.0, 1.0}};
  };
  proc.q = Mat::diag(Vec{0.01, 0.01});
  MeasurementModel meas;
  meas.h = [](const Vec& x) { return Vec{x[0]}; };
  meas.jacobian = [](const Vec&) { return Mat{{1.0, 0.0}}; };
  meas.r = Mat{{0.5}};
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    f.predict(proc, Vec{});
    f.update(meas, Vec{rng.gaussian()});
    const Mat& p = f.covariance();
    EXPECT_DOUBLE_EQ(p(0, 1), p(1, 0));
    EXPECT_GT(p(0, 0), 0.0);
    EXPECT_GT(p(1, 1), 0.0);
  }
}

}  // namespace
}  // namespace rge::math
