// Unit tests for the cached road matcher and its hash-grid spatial index.
//
// The load-bearing property is bit-parity: the indexed ring search must
// return exactly what the brute-force scan returns — same segment, same
// projection parameter, same squared distance — for any query, including
// degenerate geometry (zero-length segments) and queries sitting exactly
// on grid-cell boundaries. Everything else (the cache, the wrappers) is
// verified through the observability counters.
#include "core/road_matcher.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/map_matching.hpp"
#include "math/angles.hpp"
#include "obs/obs.hpp"
#include "road/road.hpp"
#include "sensors/smartphone.hpp"
#include "testing/scenario.hpp"
#include "vehicle/trip.hpp"

namespace rge::core {
namespace {

using math::deg2rad;

// ---- SegmentIndex parity ------------------------------------------------

void expect_same_match(const road::SegmentMatch& a,
                       const road::SegmentMatch& b, const char* what) {
  EXPECT_EQ(a.segment, b.segment) << what;
  EXPECT_EQ(a.t, b.t) << what;
  EXPECT_EQ(a.d2, b.d2) << what;
}

TEST(SegmentIndex, RandomPolylineParity) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> step(-40.0, 60.0);
  std::vector<double> east{0.0};
  std::vector<double> north{0.0};
  for (int i = 0; i < 300; ++i) {
    east.push_back(east.back() + step(rng));
    north.push_back(north.back() + 0.4 * step(rng));
  }
  const road::SegmentIndex index(east, north, 25.0);

  std::uniform_real_distribution<double> qe(-500.0, 4000.0);
  std::uniform_real_distribution<double> qn(-2000.0, 2000.0);
  for (int i = 0; i < 2000; ++i) {
    const double e = qe(rng);
    const double n = qn(rng);
    expect_same_match(index.nearest(e, n), index.nearest_brute(e, n),
                      "random query");
  }
}

TEST(SegmentIndex, DuplicateAndZeroLengthSegmentsParity) {
  // Polyline with repeated vertices: zero-length segments must neither
  // crash nor break the tie-break (lowest segment index wins on equal d2).
  const std::vector<double> east{0.0, 10.0, 10.0, 10.0, 20.0, 20.0, 35.0};
  const std::vector<double> north{0.0, 0.0, 0.0, 5.0, 5.0, 5.0, -2.0};
  const road::SegmentIndex index(east, north, 4.0);

  std::mt19937 rng(7);
  std::uniform_real_distribution<double> q(-10.0, 45.0);
  for (int i = 0; i < 500; ++i) {
    const double e = q(rng);
    const double n = 0.3 * q(rng);
    const auto a = index.nearest(e, n);
    const auto b = index.nearest_brute(e, n);
    expect_same_match(a, b, "degenerate polyline");
  }
  // A query equidistant from a zero-length segment and its neighbours
  // resolves to the lowest segment index in both modes.
  const auto tie = index.nearest(10.0, 0.0);
  EXPECT_EQ(tie.segment, index.nearest_brute(10.0, 0.0).segment);
}

TEST(SegmentIndex, GridBoundaryQueriesParity) {
  // Axis-aligned polyline whose vertices land exactly on cell corners,
  // probed at exact multiples of the cell size (the ring-search bound is
  // strict, so boundary ties must still be scanned).
  std::vector<double> east;
  std::vector<double> north;
  const double cell = 10.0;
  for (int i = 0; i <= 20; ++i) {
    east.push_back(cell * static_cast<double>(i));
    north.push_back((i % 2 == 0) ? 0.0 : cell);
  }
  const road::SegmentIndex index(east, north, cell);
  for (int ix = -2; ix <= 22; ++ix) {
    for (int iy = -3; iy <= 4; ++iy) {
      const double e = cell * static_cast<double>(ix);
      const double n = cell * static_cast<double>(iy);
      expect_same_match(index.nearest(e, n), index.nearest_brute(e, n),
                        "cell-corner query");
    }
  }
}

TEST(SegmentIndex, NonFiniteQueriesTerminateAndMatchBrute) {
  // Regression (hostile-world fuzzer, corpus seeds 7/23): a NaN query
  // point made the ring search spin effectively forever — floor(NaN)
  // produced a garbage start cell and no candidate ever improved the
  // infinite sentinel, so neither exit condition could fire. The guard
  // must return exactly what the brute scan computes: the default match
  // (segment 0, t 0) at infinite distance, which to_fix() then maps to an
  // invalid fix via the lateral gate.
  std::vector<double> east{0.0, 50.0, 120.0, 200.0};
  std::vector<double> north{0.0, 10.0, -5.0, 20.0};
  const road::SegmentIndex index(east, north, 15.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double bad[][2] = {{nan, 0.0},  {0.0, nan},  {nan, nan},
                           {inf, 0.0},  {0.0, -inf}, {inf, inf},
                           {-inf, nan}, {nan, inf}};
  for (const auto& q : bad) {
    expect_same_match(index.nearest(q[0], q[1]),
                      index.nearest_brute(q[0], q[1]), "non-finite query");
    EXPECT_TRUE(std::isinf(index.nearest(q[0], q[1]).d2));
  }
  // Finite queries far outside the grid stay exact too (clamped start
  // cell) and must return promptly rather than walking empty rings.
  for (const double far : {1.0e7, -1.0e7, 1.0e12, -1.0e12}) {
    expect_same_match(index.nearest(far, -far), index.nearest_brute(far, -far),
                      "far finite query");
  }
}

TEST(SegmentIndex, RejectsMalformedInput) {
  const std::vector<double> one{0.0};
  const std::vector<double> two{0.0, 1.0};
  EXPECT_THROW(road::SegmentIndex(one, one, 10.0), std::invalid_argument);
  EXPECT_THROW(road::SegmentIndex(two, one, 10.0), std::invalid_argument);
  EXPECT_THROW(road::SegmentIndex(two, two, 0.0), std::invalid_argument);
}

// ---- RoadMatcher parity -------------------------------------------------

road::Road hilly_road() {
  road::RoadBuilder b("matcher-hills");
  b.add_straight(600.0, deg2rad(1.0));
  b.add_section(road::SectionSpec{500.0, deg2rad(1.0), deg2rad(-2.0),
                                  deg2rad(75.0), 1});
  b.add_straight(700.0, deg2rad(-2.0));
  b.add_section(road::SectionSpec{400.0, deg2rad(-2.0), deg2rad(3.0),
                                  deg2rad(-50.0), 1});
  b.add_straight(500.0, deg2rad(3.0));
  return b.build();
}

TEST(RoadMatcher, MatchPointIndexedEqualsBrute) {
  const road::Road r = hilly_road();
  const RoadMatcher matcher(r);
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> ds(0.0, r.length_m());
  std::uniform_real_distribution<double> lat(-80.0, 80.0);
  const math::LocalTangentPlane ltp(r.anchor());
  for (int i = 0; i < 400; ++i) {
    const double s = ds(rng);
    const double l = lat(rng);  // some beyond max_lateral_m -> invalid
    const auto pos = r.position_at(s);
    const double h = r.heading_at(s);
    math::Enu p = pos;
    p.east_m += -std::sin(h) * l;
    p.north_m += std::cos(h) * l;
    const auto geo = ltp.to_geodetic(p);
    const auto a = matcher.match_point(geo, RoadMatcher::Mode::kIndexed);
    const auto b = matcher.match_point(geo, RoadMatcher::Mode::kBruteForce);
    EXPECT_EQ(a.s_m, b.s_m);
    EXPECT_EQ(a.lateral_m, b.lateral_m);
    EXPECT_EQ(a.valid, b.valid);
  }
}

TEST(RoadMatcher, OffRoadBeyondMaxLateralInvalidInBothModes) {
  const road::Road r = hilly_road();
  MapMatchConfig cfg;
  cfg.max_lateral_m = 25.0;
  const RoadMatcher matcher(r, cfg);
  const auto pos = r.position_at(900.0);
  math::Enu p = pos;
  p.north_m += 300.0;
  const auto geo = math::LocalTangentPlane(r.anchor()).to_geodetic(p);
  const auto a = matcher.match_point(geo, RoadMatcher::Mode::kIndexed);
  const auto b = matcher.match_point(geo, RoadMatcher::Mode::kBruteForce);
  EXPECT_FALSE(a.valid);
  EXPECT_FALSE(b.valid);
  EXPECT_EQ(a.s_m, b.s_m);
  EXPECT_EQ(a.lateral_m, b.lateral_m);
}

TEST(RoadMatcher, MatchTrackIndexedEqualsBruteWithOutages) {
  const road::Road r = hilly_road();
  vehicle::TripConfig tc;
  tc.seed = 91;
  const auto trip = vehicle::simulate_trip(r, tc);
  sensors::SmartphoneConfig pc;
  pc.seed = 131;
  pc.random_outage_count = 3;  // outages force global re-acquisition
  const auto trace =
      sensors::simulate_sensors(trip, r.anchor(), vehicle::VehicleParams{}, pc);

  const RoadMatcher matcher(r);
  const auto a = matcher.match_track(trace.gps, RoadMatcher::Mode::kIndexed);
  const auto b = matcher.match_track(trace.gps, RoadMatcher::Mode::kBruteForce);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t) << i;
    EXPECT_EQ(a[i].s_m, b[i].s_m) << i;
    EXPECT_EQ(a[i].lateral_m, b[i].lateral_m) << i;
    EXPECT_EQ(a[i].valid, b[i].valid) << i;
  }
}

TEST(RoadMatcher, MatchTrackParityAcrossScenarioRoutes) {
  // Every route preset of the regression matrix, driven once: the indexed
  // and brute matchers must agree bit-for-bit on realistic GPS tracks.
  using testing::RoutePreset;
  for (const RoutePreset preset :
       {RoutePreset::kFlatShort, RoutePreset::kTable3,
        RoutePreset::kHillySteep, RoutePreset::kRollingHills,
        RoutePreset::kLaneChangeAvenue, RoutePreset::kHighway}) {
    const road::Road r = testing::build_route(preset);
    vehicle::TripConfig tc;
    tc.seed = 1000 + static_cast<std::uint64_t>(preset);
    const auto trip = vehicle::simulate_trip(r, tc);
    sensors::SmartphoneConfig pc;
    pc.seed = 2000 + static_cast<std::uint64_t>(preset);
    const auto trace = sensors::simulate_sensors(trip, r.anchor(),
                                                 vehicle::VehicleParams{}, pc);
    const RoadMatcher matcher(r);
    const auto a = matcher.match_track(trace.gps, RoadMatcher::Mode::kIndexed);
    const auto b =
        matcher.match_track(trace.gps, RoadMatcher::Mode::kBruteForce);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].s_m, b[i].s_m)
          << "preset " << static_cast<int>(preset) << " fix " << i;
      EXPECT_EQ(a[i].lateral_m, b[i].lateral_m);
      EXPECT_EQ(a[i].valid, b[i].valid);
    }
  }
}

// ---- MatcherCache content identity --------------------------------------

/// Roads that agree on name, length, and sample count but (optionally)
/// differ in their mid-road grades — exactly the shape that fooled a
/// cache keyed by address plus endpoint fingerprints.
road::Road named_road(const std::string& name, double mid_grade_deg) {
  road::RoadBuilder b(name);
  b.add_straight(400.0, deg2rad(1.0));
  b.add_section(road::SectionSpec{300.0, deg2rad(1.0),
                                  deg2rad(mid_grade_deg), deg2rad(40.0), 1});
  b.add_straight(400.0, deg2rad(mid_grade_deg));
  return b.build();
}

TEST(MatcherCache, SameContentHitsAcrossDistinctObjects) {
  MatcherCache cache(4);
  const road::Road a = named_road("cache-road", -2.0);
  const road::Road b = named_road("cache-road", -2.0);
  // Two separately built but identical roads share one matcher: identity
  // is the content hash, not the object address.
  EXPECT_EQ(cache.get(a).get(), cache.get(b).get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(MatcherCache, DifferentMidGeometrySameFingerprintFieldsMisses) {
  MatcherCache cache(4);
  const road::Road a = named_road("twin", -2.0);
  const road::Road b = named_road("twin", 3.0);
  ASSERT_EQ(a.length_m(), b.length_m());
  ASSERT_EQ(a.sample_count(), b.sample_count());
  EXPECT_NE(cache.get(a).get(), cache.get(b).get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(MatcherCache, RecycledAddressDoesNotServeStaleMatcher) {
  // Regression: the old cache keyed entries by road address, so a road
  // destroyed and replaced by a different one at the same address could
  // be served the dead road's matcher.
  MatcherCache cache(4);
  const void* first_addr = nullptr;
  std::shared_ptr<const RoadMatcher> stale;
  {
    const auto doomed =
        std::make_unique<road::Road>(named_road("recycled", -2.0));
    first_addr = doomed.get();
    stale = cache.get(*doomed);
  }
  // Same-size allocation usually reuses the slot immediately; pin the
  // misses so the allocator cannot hand the same wrong address back.
  std::unique_ptr<road::Road> replacement;
  std::vector<std::unique_ptr<road::Road>> pinned;
  for (int i = 0; i < 64 && replacement == nullptr; ++i) {
    auto cand = std::make_unique<road::Road>(named_road("recycled", 3.0));
    if (cand.get() == first_addr) {
      replacement = std::move(cand);
    } else {
      pinned.push_back(std::move(cand));
    }
  }
  if (replacement == nullptr) {
    GTEST_SKIP() << "allocator never recycled the address";
  }
  const auto fresh = cache.get(*replacement);
  EXPECT_NE(fresh.get(), stale.get());
  // And it projects against the NEW road's geometry.
  const auto fix = fresh->match_point(replacement->geo_at(700.0));
  EXPECT_TRUE(fix.valid);
  EXPECT_NEAR(fix.s_m, 700.0, 1.0);
}

TEST(MatcherCache, EvictsBeyondCapacityKeepsMostRecentlyUsed) {
  MatcherCache cache(2);
  const road::Road a = named_road("lru-a", 1.0);
  const road::Road b = named_road("lru-b", 1.0);
  const road::Road c = named_road("lru-c", 1.0);
  const auto ma = cache.get(a);
  (void)cache.get(b);
  (void)cache.get(a);  // a becomes most recently used
  (void)cache.get(c);  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.get(a).get(), ma.get());  // still the cached instance
  EXPECT_EQ(cache.capacity(), 2u);
}

TEST(MatcherCache, ConcurrentGetIsThreadSafe) {
  MatcherCache cache(3);  // smaller than the road set: eviction under load
  std::vector<road::Road> roads;
  for (int i = 0; i < 4; ++i) {
    roads.push_back(
        named_road("concurrent-" + std::to_string(i), 1.0 + i));
  }
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &roads, &bad, t] {
      for (int i = 0; i < 50; ++i) {
        const auto m = cache.get(roads[(t + i) % roads.size()]);
        if (m == nullptr || m->vertex_count() < 2) bad.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(cache.size(), 3u);
}

TEST(RoadMatcher, WrapperEqualsDirectMatcher) {
  const road::Road r = hilly_road();
  const auto direct = RoadMatcher(r).match_point(r.geo_at(700.0));
  const auto wrapped = match_point(r, r.geo_at(700.0));
  EXPECT_EQ(direct.s_m, wrapped.s_m);
  EXPECT_EQ(direct.lateral_m, wrapped.lateral_m);
  EXPECT_EQ(direct.valid, wrapped.valid);
}

}  // namespace
}  // namespace rge::core
