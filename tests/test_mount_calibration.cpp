// Tests for mount calibration and the static Eq. 3 baseline.
#include "core/mount_calibration.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/static_grade.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "math/angles.hpp"
#include "road/network.hpp"
#include "sensors/smartphone.hpp"
#include "vehicle/trip.hpp"

namespace rge::core {
namespace {

using math::deg2rad;

struct Scenario {
  road::Road road;
  vehicle::Trip trip;
  sensors::SensorTrace trace;
};

Scenario make_scenario(double mount_yaw_deg, std::uint64_t seed = 1,
                       double crown = 0.02) {
  Scenario sc{road::make_table3_route(2019), {}, {}};
  vehicle::TripConfig tc;
  tc.seed = seed;
  sc.trip = vehicle::simulate_trip(sc.road, tc);
  sensors::SmartphoneConfig pc;
  pc.seed = seed + 55;
  pc.mount_yaw_rad = deg2rad(mount_yaw_deg);
  pc.road_crown = crown;
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       vehicle::VehicleParams{}, pc);
  return sc;
}

TEST(MountCalibration, RecoversInjectedYaw) {
  for (double yaw_deg : {-8.0, -3.0, 0.0, 3.0, 8.0}) {
    const Scenario sc = make_scenario(yaw_deg, 3);
    const MountCalibration cal = calibrate_mount(sc.trace);
    ASSERT_TRUE(cal.reliable) << yaw_deg;
    EXPECT_NEAR(math::rad2deg(cal.yaw_rad), yaw_deg, 1.2)
        << "yaw " << yaw_deg;
  }
}

TEST(MountCalibration, RecoversRoadCrown) {
  const Scenario sc = make_scenario(4.0, 5, 0.03);
  const MountCalibration cal = calibrate_mount(sc.trace);
  ASSERT_TRUE(cal.reliable);
  EXPECT_NEAR(cal.crown_estimate, 0.03, 0.015);
}

TEST(MountCalibration, UnreliableWithoutData) {
  sensors::SensorTrace empty;
  const MountCalibration cal = calibrate_mount(empty);
  EXPECT_FALSE(cal.reliable);
  EXPECT_EQ(cal.samples_used, 0u);
}

TEST(MountCalibration, DerotationRoundTrip) {
  const Scenario sc = make_scenario(6.0, 7);
  const MountCalibration cal = calibrate_mount(sc.trace);
  ASSERT_TRUE(cal.reliable);
  const auto fixed = derotate_imu(sc.trace, cal.yaw_rad);
  // Re-calibrating the corrected trace must find ~zero yaw.
  const MountCalibration recal = calibrate_mount(fixed);
  ASSERT_TRUE(recal.reliable);
  EXPECT_NEAR(math::rad2deg(recal.yaw_rad), 0.0, 0.5);
}

TEST(MountCalibration, ImprovesPipelineUnderMisalignment) {
  const Scenario sc = make_scenario(10.0, 9);
  PipelineConfig no_cal;
  no_cal.auto_calibrate_mount = false;
  const auto raw =
      estimate_gradient(sc.trace, vehicle::VehicleParams{}, no_cal);
  // Default config auto-calibrates and must report the injected yaw.
  const auto fixed = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  ASSERT_TRUE(fixed.mount.reliable);
  EXPECT_NEAR(math::rad2deg(fixed.mount.yaw_rad), 10.0, 1.5);
  const double e_raw = evaluate_track(raw.fused, sc.trip).mae_rad;
  const double e_fixed = evaluate_track(fixed.fused, sc.trip).mae_rad;
  EXPECT_LT(e_fixed, e_raw);
}

// ---------------- static Eq. 3 inversion baseline ----------------------

TEST(StaticGrade, Validation) {
  EXPECT_THROW(baselines::run_static_grade(sensors::SensorTrace{},
                                           vehicle::VehicleParams{}),
               std::invalid_argument);
  const Scenario sc = make_scenario(0.0, 11);
  baselines::StaticGradeConfig bad;
  bad.emit_rate_hz = 0.0;
  EXPECT_THROW(
      baselines::run_static_grade(sc.trace, vehicle::VehicleParams{}, bad),
      std::invalid_argument);
}

TEST(StaticGrade, UnbiasedButNoisy) {
  const Scenario sc = make_scenario(0.0, 12);
  const auto track =
      baselines::run_static_grade(sc.trace, vehicle::VehicleParams{});
  ASSERT_GT(track.size(), 100u);
  const auto stats = evaluate_track(track, sc.trip);
  // Roughly unbiased...
  const auto truth = truth_grade_at_times(sc.trip, track.t);
  double bias = 0.0;
  for (std::size_t i = 0; i < track.t.size(); ++i) {
    bias += track.grade[i] - truth[i];
  }
  bias /= static_cast<double>(track.t.size());
  EXPECT_LT(std::abs(bias), deg2rad(0.3));
  // ...but much noisier than the EKF pipeline: this is the paper's whole
  // argument for the filtering machinery.
  const auto ekf = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  const auto ekf_stats = evaluate_track(ekf.fused, sc.trip);
  EXPECT_GT(stats.median_abs_deg, 2.0 * ekf_stats.median_abs_deg);
}

}  // namespace
}  // namespace rge::core
