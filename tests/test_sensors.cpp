// Unit tests for the smartphone sensor simulation and trace CSV IO.
#include "sensors/smartphone.hpp"
#include "sensors/trace.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "math/angles.hpp"
#include "math/stats.hpp"
#include "road/network.hpp"
#include "vehicle/trip.hpp"

namespace rge::sensors {
namespace {

using math::deg2rad;

struct Scenario {
  road::Road road;
  vehicle::Trip trip;
  vehicle::VehicleParams car;
};

Scenario make_scenario(double grade_deg = 2.0, double length = 2000.0,
                       bool lane_changes = true) {
  road::RoadBuilder b("test-road");
  b.add_straight(length, deg2rad(grade_deg), 2);
  Scenario sc{b.build(), {}, {}};
  vehicle::TripConfig tc;
  tc.seed = 42;
  tc.allow_lane_changes = lane_changes;
  sc.trip = vehicle::simulate_trip(sc.road, tc);
  return sc;
}

TEST(Smartphone, EmptyTripThrows) {
  vehicle::Trip empty;
  SmartphoneConfig cfg;
  EXPECT_THROW(
      simulate_sensors(empty, math::GeoPoint{}, vehicle::VehicleParams{},
                       cfg),
      std::invalid_argument);
}

TEST(Smartphone, StreamRatesAndCounts) {
  const Scenario sc = make_scenario();
  SmartphoneConfig cfg;
  cfg.seed = 1;
  const SensorTrace trace =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  EXPECT_EQ(trace.imu.size(), sc.trip.states.size());
  const double dur = sc.trip.duration_s();
  EXPECT_NEAR(static_cast<double>(trace.gps.size()), dur, 3.0);
  EXPECT_NEAR(static_cast<double>(trace.speedometer.size()), 10.0 * dur,
              15.0);
  EXPECT_NEAR(static_cast<double>(trace.canbus_speed.size()), 10.0 * dur,
              15.0);
  EXPECT_NEAR(static_cast<double>(trace.barometer_alt.size()), 10.0 * dur,
              15.0);
  EXPECT_NEAR(trace.duration_s(), dur, 0.2);
}

TEST(Smartphone, AccelerometerSeesGravityLeak) {
  // On a constant 3 degree uphill at steady speed, the mean forward
  // specific force is ~ g*sin(3 deg), not zero.
  const Scenario sc = make_scenario(3.0);
  SmartphoneConfig cfg;
  cfg.seed = 2;
  const SensorTrace trace =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  std::vector<double> fwd;
  for (std::size_t i = trace.imu.size() / 2; i < trace.imu.size(); ++i) {
    fwd.push_back(trace.imu[i].accel_forward);
  }
  EXPECT_NEAR(math::mean(fwd), 9.80665 * std::sin(deg2rad(3.0)), 0.1);
}

TEST(Smartphone, NoiseLevelsMatchConfig) {
  const Scenario sc = make_scenario(0.0, 2000.0, /*lane_changes=*/false);
  SmartphoneConfig cfg;
  cfg.seed = 3;
  cfg.disturbances_per_minute = 0.0;  // isolate white noise
  cfg.accel_drift_sigma = 0.0;
  cfg.gyro_drift_sigma = 0.0;
  const SensorTrace trace =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  // Gyro on a straight road is pure white noise.
  std::vector<double> gyro;
  for (const auto& s : trace.imu) gyro.push_back(s.gyro_z);
  EXPECT_NEAR(math::stddev(gyro), cfg.gyro_white_sigma, 0.002);
  EXPECT_NEAR(math::mean(gyro), 0.0, 0.001);
}

TEST(Smartphone, MountYawMixesAxes) {
  const Scenario sc = make_scenario(0.0);
  SmartphoneConfig cfg;
  cfg.seed = 4;
  cfg.mount_yaw_rad = deg2rad(25.0);
  cfg.road_crown = 0.0;  // isolate the rotation effect
  SmartphoneConfig straight = cfg;
  straight.mount_yaw_rad = 0.0;
  const SensorTrace aligned_cfg_trace =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, straight);
  const SensorTrace rotated =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  // During acceleration phases forward axis magnitude shrinks by cos(yaw).
  double sum_aligned = 0.0;
  double sum_rotated = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {  // initial acceleration
    sum_aligned += aligned_cfg_trace.imu[i].accel_forward;
    sum_rotated += rotated.imu[i].accel_forward;
  }
  EXPECT_LT(std::abs(sum_rotated), std::abs(sum_aligned));
}

TEST(Smartphone, GpsOutagesAreMarkedInvalid) {
  const Scenario sc = make_scenario();
  SmartphoneConfig cfg;
  cfg.seed = 5;
  cfg.gps_outages = {{10.0, 20.0}};
  const SensorTrace trace =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  int invalid = 0;
  for (const auto& f : trace.gps) {
    if (f.t >= 10.0 && f.t < 20.0) {
      EXPECT_FALSE(f.valid);
      ++invalid;
    } else {
      EXPECT_TRUE(f.valid);
    }
  }
  EXPECT_NEAR(invalid, 10, 2);
}

TEST(Smartphone, RandomOutagesRequested) {
  const Scenario sc = make_scenario();
  SmartphoneConfig cfg;
  cfg.seed = 6;
  cfg.random_outage_count = 3;
  const SensorTrace trace =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  int invalid = 0;
  for (const auto& f : trace.gps) invalid += f.valid ? 0 : 1;
  EXPECT_GE(invalid, 5);  // 3 outages of >= 5 s at 1 Hz
}

TEST(Smartphone, GpsPositionNearTruth) {
  const Scenario sc = make_scenario();
  SmartphoneConfig cfg;
  cfg.seed = 7;
  const SensorTrace trace =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  const math::LocalTangentPlane ltp(sc.road.anchor());
  // Each fix should be within ~20 m of the true position at that time.
  std::size_t si = 0;
  for (const auto& f : trace.gps) {
    while (si + 1 < sc.trip.states.size() && sc.trip.states[si].t < f.t) {
      ++si;
    }
    const auto true_pos = sc.trip.states[si].position;
    const auto meas = ltp.to_enu(f.position);
    const double err = std::hypot(meas.east_m - true_pos.east_m,
                                  meas.north_m - true_pos.north_m);
    EXPECT_LT(err, 25.0);
  }
}

TEST(Smartphone, BarometerIsMetreLevelPoor) {
  const Scenario sc = make_scenario(0.0);
  SmartphoneConfig cfg;
  cfg.seed = 8;
  const SensorTrace trace =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  std::vector<double> errs;
  std::size_t si = 0;
  for (const auto& b : trace.barometer_alt) {
    while (si + 1 < sc.trip.states.size() && sc.trip.states[si].t < b.t) {
      ++si;
    }
    errs.push_back(b.value - (sc.road.anchor().altitude_m +
                              sc.trip.states[si].altitude));
  }
  // Metres of error, per [19] — far worse than the survey altimeter.
  EXPECT_GT(math::stddev(errs), 0.8);
  EXPECT_LT(math::stddev(errs), 8.0);
}

TEST(Smartphone, Deterministic) {
  const Scenario sc = make_scenario();
  SmartphoneConfig cfg;
  cfg.seed = 9;
  const SensorTrace a =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  const SensorTrace b =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  ASSERT_EQ(a.imu.size(), b.imu.size());
  EXPECT_DOUBLE_EQ(a.imu.back().gyro_z, b.imu.back().gyro_z);
  EXPECT_DOUBLE_EQ(a.gps.back().speed_mps, b.gps.back().speed_mps);
}

// ----------------- determinism audit regressions ----------------------

/// Exact equality across every stream of two traces; `ignore_validity`
/// compares GPS fixes by value only (the random-outage decoupling test).
void expect_traces_bit_identical(const SensorTrace& a, const SensorTrace& b,
                                 bool ignore_validity = false) {
  ASSERT_EQ(a.imu.size(), b.imu.size());
  for (std::size_t i = 0; i < a.imu.size(); ++i) {
    ASSERT_EQ(a.imu[i].t, b.imu[i].t);
    ASSERT_EQ(a.imu[i].accel_forward, b.imu[i].accel_forward);
    ASSERT_EQ(a.imu[i].accel_lateral, b.imu[i].accel_lateral);
    ASSERT_EQ(a.imu[i].accel_vertical, b.imu[i].accel_vertical);
    ASSERT_EQ(a.imu[i].gyro_z, b.imu[i].gyro_z);
  }
  ASSERT_EQ(a.gps.size(), b.gps.size());
  for (std::size_t i = 0; i < a.gps.size(); ++i) {
    ASSERT_EQ(a.gps[i].t, b.gps[i].t);
    ASSERT_EQ(a.gps[i].position.latitude_deg, b.gps[i].position.latitude_deg);
    ASSERT_EQ(a.gps[i].position.longitude_deg,
              b.gps[i].position.longitude_deg);
    ASSERT_EQ(a.gps[i].speed_mps, b.gps[i].speed_mps);
    ASSERT_EQ(a.gps[i].heading_rad, b.gps[i].heading_rad);
    if (!ignore_validity) {
      ASSERT_EQ(a.gps[i].valid, b.gps[i].valid);
    }
  }
  const auto expect_scalars_eq = [](const std::vector<ScalarSample>& xs,
                                    const std::vector<ScalarSample>& ys) {
    ASSERT_EQ(xs.size(), ys.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      ASSERT_EQ(xs[i].t, ys[i].t);
      ASSERT_EQ(xs[i].value, ys[i].value);
    }
  };
  expect_scalars_eq(a.speedometer, b.speedometer);
  expect_scalars_eq(a.canbus_speed, b.canbus_speed);
  expect_scalars_eq(a.barometer_alt, b.barometer_alt);
  expect_scalars_eq(a.engine_torque, b.engine_torque);
  expect_scalars_eq(a.active_gear, b.active_gear);
}

TEST(SensorSim, IdenticalConfigsReplayBitIdenticalTraces) {
  const Scenario sc = make_scenario();
  SmartphoneConfig cfg;
  cfg.seed = 404;
  cfg.random_outage_count = 2;
  const SensorTrace a =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  const SensorTrace b =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  expect_traces_bit_identical(a, b);
}

TEST(SensorSim, RandomOutagesOnlyChangeFixValidity) {
  // Random outages must draw from their own forked stream: requesting them
  // may invalidate fixes but must not shift a single noise draw in any
  // other stream (the determinism-audit regression — outages used to
  // consume from the GPS noise stream).
  const Scenario sc = make_scenario();
  SmartphoneConfig clean;
  clean.seed = 405;
  SmartphoneConfig outages = clean;
  outages.random_outage_count = 4;
  const SensorTrace a =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, clean);
  const SensorTrace b =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, outages);
  expect_traces_bit_identical(a, b, /*ignore_validity=*/true);
  int invalid = 0;
  for (const auto& f : b.gps) invalid += f.valid ? 0 : 1;
  EXPECT_GE(invalid, 5);
}

TEST(SensorSim, StringForkDrawsArePinned) {
  // fork(tag) uses a fixed FNV-1a hash, not std::hash, so the tag->stream
  // mapping no longer depends on the standard library. Pin one draw per
  // fork of the sensor-sim streams: if this test fails, the seeded noise
  // streams moved and every committed golden in tests/golden/ is
  // invalidated and must be regenerated (see EXPERIMENTS.md).
  const math::Rng root(7);
  math::Rng accel = root.fork("accel");
  math::Rng outage = root.fork("gps-outage");
  EXPECT_DOUBLE_EQ(accel.gaussian(), 0.35584189701742847);
  EXPECT_DOUBLE_EQ(outage.gaussian(), 0.039853881033789597);
}

// ------------------------------ CSV IO --------------------------------

TEST(TraceCsv, RoundTripExact) {
  const Scenario sc = make_scenario(1.0, 500.0);
  SmartphoneConfig cfg;
  cfg.seed = 10;
  const SensorTrace trace =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  std::stringstream ss;
  write_csv(trace, ss);
  const SensorTrace back = read_csv(ss);
  ASSERT_EQ(back.imu.size(), trace.imu.size());
  ASSERT_EQ(back.gps.size(), trace.gps.size());
  ASSERT_EQ(back.speedometer.size(), trace.speedometer.size());
  ASSERT_EQ(back.canbus_speed.size(), trace.canbus_speed.size());
  ASSERT_EQ(back.barometer_alt.size(), trace.barometer_alt.size());
  ASSERT_EQ(back.engine_torque.size(), trace.engine_torque.size());
  ASSERT_EQ(back.active_gear.size(), trace.active_gear.size());
  ASSERT_FALSE(trace.engine_torque.empty());
  EXPECT_DOUBLE_EQ(back.engine_torque.back().value,
                   trace.engine_torque.back().value);
  EXPECT_DOUBLE_EQ(back.imu_rate_hz, trace.imu_rate_hz);
  // Doubles must round-trip bit-exactly (17 significant digits).
  for (std::size_t i = 0; i < trace.imu.size(); i += 97) {
    EXPECT_DOUBLE_EQ(back.imu[i].t, trace.imu[i].t);
    EXPECT_DOUBLE_EQ(back.imu[i].gyro_z, trace.imu[i].gyro_z);
    EXPECT_DOUBLE_EQ(back.imu[i].accel_forward, trace.imu[i].accel_forward);
  }
  for (std::size_t i = 0; i < trace.gps.size(); i += 7) {
    EXPECT_DOUBLE_EQ(back.gps[i].position.latitude_deg,
                     trace.gps[i].position.latitude_deg);
    EXPECT_EQ(back.gps[i].valid, trace.gps[i].valid);
  }
}

TEST(TraceCsv, FileRoundTrip) {
  const Scenario sc = make_scenario(1.0, 300.0);
  SmartphoneConfig cfg;
  cfg.seed = 11;
  const SensorTrace trace =
      simulate_sensors(sc.trip, sc.road.anchor(), sc.car, cfg);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rge_trace_test.csv")
          .string();
  write_csv_file(trace, path);
  const SensorTrace back = read_csv_file(path);
  EXPECT_EQ(back.imu.size(), trace.imu.size());
  std::remove(path.c_str());
  EXPECT_THROW(read_csv_file("/nonexistent/rge.csv"), std::runtime_error);
}

TEST(TraceCsv, MalformedInputs) {
  {
    std::stringstream ss("bogusstream,1.0,2.0\n");
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("imu,1.0,2.0\n");  // wrong field count
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("canbus,notanumber,2.0\n");
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("meta,wrong_key,5\n");
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
  {
    // Comments and blank lines are fine.
    std::stringstream ss("# comment\n\ncanbus,1.5,12.25\n");
    const SensorTrace t = read_csv(ss);
    ASSERT_EQ(t.canbus_speed.size(), 1u);
    EXPECT_DOUBLE_EQ(t.canbus_speed[0].value, 12.25);
  }
}

TEST(TraceCsv, EmptyTraceRoundTrips) {
  SensorTrace empty;
  std::stringstream ss;
  write_csv(empty, ss);
  const SensorTrace back = read_csv(ss);
  EXPECT_TRUE(back.empty());
  EXPECT_DOUBLE_EQ(back.duration_s(), 0.0);
}

}  // namespace
}  // namespace rge::sensors
