// Unit tests for the LOESS local-regression smoother.
#include "math/loess.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "math/rng.hpp"
#include "math/stats.hpp"

namespace rge::math {
namespace {

std::vector<double> iota_x(std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i);
  return x;
}

TEST(Loess, ConfigValidation) {
  EXPECT_THROW(LoessSmoother({.span = 0.0}), std::invalid_argument);
  EXPECT_THROW(LoessSmoother({.span = 1.5}), std::invalid_argument);
  EXPECT_THROW(LoessSmoother({.span = 0.5, .degree = 3}),
               std::invalid_argument);
  EXPECT_THROW(
      LoessSmoother({.span = 0.5, .degree = 1, .robust_iterations = -1}),
      std::invalid_argument);
}

TEST(Loess, ReproducesLinearExactly) {
  const auto x = iota_x(50);
  std::vector<double> y(50);
  for (std::size_t i = 0; i < 50; ++i) y[i] = 3.0 * x[i] - 2.0;
  const LoessSmoother s({.span = 0.3, .degree = 1});
  const auto fitted = s.fit(x, y);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_NEAR(fitted[i], y[i], 1e-8);
}

TEST(Loess, QuadraticDegreeReproducesParabola) {
  const auto x = iota_x(60);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) y[i] = 0.5 * x[i] * x[i];
  const LoessSmoother s({.span = 0.25, .degree = 2});
  const auto fitted = s.fit(x, y);
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_NEAR(fitted[i], y[i], 1e-6) << "i=" << i;
  }
}

TEST(Loess, ReducesNoiseVariance) {
  Rng rng(21);
  const std::size_t n = 400;
  const auto x = iota_x(n);
  std::vector<double> clean(n);
  std::vector<double> noisy(n);
  for (std::size_t i = 0; i < n; ++i) {
    clean[i] = std::sin(0.05 * x[i]);
    noisy[i] = clean[i] + rng.gaussian(0.0, 0.3);
  }
  const LoessSmoother s({.span = 0.08, .degree = 1});
  const auto fitted = s.fit(x, noisy);
  EXPECT_LT(rmse(fitted, clean), 0.5 * rmse(noisy, clean));
}

TEST(Loess, RobustIterationsSuppressOutliers) {
  const std::size_t n = 101;
  const auto x = iota_x(n);
  Rng rng(8);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = 1.0 + rng.gaussian(0.0, 0.05);
  y[50] = 50.0;  // gross outlier
  const LoessSmoother plain({.span = 0.2, .degree = 1});
  const LoessSmoother robust(
      {.span = 0.2, .degree = 1, .robust_iterations = 3});
  const auto f_plain = plain.fit(x, y);
  const auto f_robust = robust.fit(x, y);
  // Near the outlier the robust fit should stay close to 1.
  EXPECT_GT(std::abs(f_plain[48] - 1.0), std::abs(f_robust[48] - 1.0));
  EXPECT_NEAR(f_robust[48], 1.0, 0.15);
}

TEST(Loess, InputValidation) {
  const LoessSmoother s({.span = 0.5});
  const std::vector<double> x{0.0, 1.0};
  EXPECT_THROW((void)s.fit(x, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)s.fit(std::vector<double>{1.0, 0.0},
                           std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  // Tiny inputs pass through unchanged.
  const auto tiny = s.fit(std::vector<double>{1.0}, std::vector<double>{7.0});
  ASSERT_EQ(tiny.size(), 1u);
  EXPECT_DOUBLE_EQ(tiny[0], 7.0);
}

TEST(Loess, FitUniformMatchesExplicitX) {
  Rng rng(3);
  std::vector<double> y(80);
  for (auto& v : y) v = rng.gaussian();
  const LoessSmoother s({.span = 0.2, .degree = 1});
  const auto a = s.fit_uniform(y);
  const auto b = s.fit(iota_x(80), y);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

// Parameterized: smoothing must reduce noise across span settings.
class LoessSpanTest : public ::testing::TestWithParam<double> {};

TEST_P(LoessSpanTest, NoiseReduction) {
  Rng rng(100);
  const std::size_t n = 300;
  const auto x = iota_x(n);
  std::vector<double> clean(n);
  std::vector<double> noisy(n);
  for (std::size_t i = 0; i < n; ++i) {
    clean[i] = 0.01 * x[i];
    noisy[i] = clean[i] + rng.gaussian(0.0, 0.2);
  }
  const LoessSmoother s({.span = GetParam(), .degree = 1});
  const auto fitted = s.fit(x, noisy);
  EXPECT_LT(rmse(fitted, clean), rmse(noisy, clean));
}

INSTANTIATE_TEST_SUITE_P(Spans, LoessSpanTest,
                         ::testing::Values(0.05, 0.1, 0.3, 0.6, 1.0));

}  // namespace
}  // namespace rge::math
