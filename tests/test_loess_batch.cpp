// Batched LOESS parity: loess_fit_batch vs per-series LoessSmoother::fit.
// With RGE_SIMD=OFF the batch delegates to the scalar smoother and every
// value is asserted bit-identical; with RGE_SIMD=ON the shared-window
// kernel runs under host-tuned flags and parity is pinned to the
// documented FMA-contraction tolerance (DESIGN.md §8).
#include "math/loess_batch.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "math/rng.hpp"
#include "math/simd.hpp"

namespace rge::math {
namespace {

/// Exact in scalar builds, pinned tolerance in SIMD builds.
void expect_parity(double batch, double scalar) {
  if constexpr (simd_enabled()) {
    EXPECT_NEAR(batch, scalar, 1e-9 * std::max(1.0, std::abs(scalar)));
  } else {
    EXPECT_EQ(batch, scalar);
  }
}

std::vector<double> sorted_grid(Rng& rng, std::size_t n) {
  std::vector<double> x(n);
  double t = 0.0;
  for (auto& v : x) {
    t += rng.uniform(0.01, 0.2);
    v = t;
  }
  return x;
}

TEST(LoessBatch, MatchesScalarPerSeries) {
  Rng rng(31);
  const std::size_t n = 180;
  const std::size_t series = 7;  // not a lane-width multiple
  const auto x = sorted_grid(rng, n);
  std::vector<double> ys(series * n);
  for (std::size_t b = 0; b < series; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      ys[b * n + i] = std::sin(0.3 * x[i] + static_cast<double>(b)) +
                      rng.gaussian(0.0, 0.2);
    }
  }
  LoessConfig cfg;
  cfg.span = 0.25;
  cfg.degree = 1;
  const auto batch = loess_fit_batch(cfg, x, ys, series);
  ASSERT_EQ(batch.size(), ys.size());
  const LoessSmoother scalar(cfg);
  for (std::size_t b = 0; b < series; ++b) {
    const auto ref = scalar.fit(
        x, std::span<const double>(ys).subspan(b * n, n));
    for (std::size_t i = 0; i < n; ++i) {
      expect_parity(batch[b * n + i], ref[i]);
    }
  }
}

TEST(LoessBatch, Degree2RobustMatchesScalar) {
  Rng rng(32);
  const std::size_t n = 120;
  const std::size_t series = 4;
  const auto x = sorted_grid(rng, n);
  std::vector<double> ys(series * n);
  for (std::size_t b = 0; b < series; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      double v = 0.05 * x[i] * x[i] + rng.gaussian(0.0, 0.1);
      if (i % 17 == 3) v += 5.0;  // outliers the robust pass downweights
      ys[b * n + i] = v;
    }
  }
  LoessConfig cfg;
  cfg.span = 0.4;
  cfg.degree = 2;
  cfg.robust_iterations = 2;
  const auto batch = loess_fit_batch(cfg, x, ys, series);
  const LoessSmoother scalar(cfg);
  for (std::size_t b = 0; b < series; ++b) {
    const auto ref = scalar.fit(
        x, std::span<const double>(ys).subspan(b * n, n));
    for (std::size_t i = 0; i < n; ++i) {
      expect_parity(batch[b * n + i], ref[i]);
    }
  }
}

TEST(LoessBatch, TiedXValuesMatchScalar) {
  // LoessSmoother allows ties in x; the shared-window kernel must pick
  // the same windows and weights.
  const std::vector<double> x = {0.0, 1.0, 1.0, 2.0, 3.0, 3.0, 4.0, 5.0};
  std::vector<double> ys;
  Rng rng(33);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      ys.push_back(rng.gaussian(0.0, 1.0));
    }
  }
  LoessConfig cfg;
  cfg.span = 0.6;
  const auto batch = loess_fit_batch(cfg, x, ys, 3);
  const LoessSmoother scalar(cfg);
  for (std::size_t b = 0; b < 3; ++b) {
    const auto ref = scalar.fit(
        x, std::span<const double>(ys).subspan(b * x.size(), x.size()));
    for (std::size_t i = 0; i < x.size(); ++i) {
      expect_parity(batch[b * x.size() + i], ref[i]);
    }
  }
}

TEST(LoessBatch, ShortSeriesReturnedUnsmoothed) {
  const std::vector<double> x = {2.5};
  const std::vector<double> ys = {1.0, -3.0};
  const auto out = loess_fit_batch(LoessConfig{}, x, ys, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], -3.0);
}

TEST(LoessBatch, ZeroSeriesReturnsEmpty) {
  const std::vector<double> x = {0.0, 1.0, 2.0};
  EXPECT_TRUE(loess_fit_batch(LoessConfig{}, x, {}, 0).empty());
}

TEST(LoessBatch, InputValidationMatchesScalar) {
  const std::vector<double> sorted = {0.0, 1.0, 2.0};
  const std::vector<double> unsorted = {0.0, 2.0, 1.0};
  const std::vector<double> ys = {0.0, 1.0, 2.0};
  EXPECT_THROW(loess_fit_batch(LoessConfig{}, unsorted, ys, 1),
               std::invalid_argument);
  EXPECT_THROW(loess_fit_batch(LoessConfig{}, sorted, ys, 2),
               std::invalid_argument);
  LoessConfig bad;
  bad.span = 0.0;
  EXPECT_THROW(loess_fit_batch(bad, sorted, ys, 1), std::invalid_argument);
}

}  // namespace
}  // namespace rge::math
