// Unit tests for Algorithm 1 (lane change detection) and the Eq. 1/Eq. 2
// displacement and velocity-adjustment machinery.
#include "core/lane_change_detector.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "math/angles.hpp"
#include "vehicle/lane_change.hpp"

namespace rge::core {
namespace {

using vehicle::LaneChangeDirection;
using vehicle::LaneChangeManeuver;

struct Profile {
  std::vector<double> t;
  std::vector<double> w;
  std::vector<double> v;
};

/// Synthesize a steering profile with a maneuver starting at t0.
Profile maneuver_profile(const LaneChangeManeuver& m, double t0,
                         double speed, double duration, double rate = 20.0) {
  Profile p;
  const double dt = 1.0 / rate;
  for (double t = 0.0; t <= duration; t += dt) {
    p.t.push_back(t);
    p.w.push_back(m.steering_rate(t - t0));
    p.v.push_back(speed);
  }
  return p;
}

TEST(Detector, SizeMismatchThrows) {
  const std::vector<double> t{0.0, 1.0};
  const std::vector<double> w{0.0, 0.0};
  const std::vector<double> v{10.0};
  EXPECT_THROW(detect_lane_changes(t, w, v), std::invalid_argument);
}

TEST(Detector, DetectsLeftLaneChange) {
  const LaneChangeManeuver m(LaneChangeDirection::kLeft, 0.15, 10.0);
  const Profile p = maneuver_profile(m, 5.0, 10.0, 20.0);
  const auto changes = detect_lane_changes(p.t, p.w, p.v);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].type, LaneChangeType::kLeft);
  EXPECT_NEAR(changes[0].t_start, 5.0, 0.5);
  EXPECT_NEAR(changes[0].t_end, 5.0 + m.duration_s(), 0.5);
  // Displacement close to one lane width, positive (left).
  EXPECT_NEAR(changes[0].displacement_m, vehicle::kLaneWidthM, 0.8);
}

TEST(Detector, DetectsRightLaneChange) {
  const LaneChangeManeuver m(LaneChangeDirection::kRight, 0.17, 12.0);
  const Profile p = maneuver_profile(m, 3.0, 12.0, 15.0);
  const auto changes = detect_lane_changes(p.t, p.w, p.v);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].type, LaneChangeType::kRight);
  EXPECT_NEAR(changes[0].displacement_m, -vehicle::kLaneWidthM, 0.8);
}

TEST(Detector, IgnoresSubThresholdSteering) {
  // A gentle correction far below delta_min.
  const LaneChangeManeuver m(LaneChangeDirection::kLeft, 0.12, 10.0);
  Profile p = maneuver_profile(m, 5.0, 10.0, 20.0);
  for (auto& x : p.w) x *= 0.3;  // peak 0.036 << 0.10
  EXPECT_TRUE(detect_lane_changes(p.t, p.w, p.v).empty());
}

TEST(Detector, RejectsSCurveByDisplacement) {
  // Sustained opposite bumps lasting much longer than a lane change: the
  // integrated lateral displacement blows past 3 lane widths.
  Profile p;
  const double rate = 20.0;
  for (double t = 0.0; t <= 60.0; t += 1.0 / rate) {
    double w = 0.0;
    if (t >= 5.0 && t < 20.0) {
      w = 0.15 * std::sin(math::kPi * (t - 5.0) / 15.0);
    } else if (t >= 20.0 && t < 35.0) {
      w = -0.15 * std::sin(math::kPi * (t - 20.0) / 15.0);
    }
    p.t.push_back(t);
    p.w.push_back(w);
    p.v.push_back(12.0);
  }
  const auto changes = detect_lane_changes(p.t, p.w, p.v);
  EXPECT_TRUE(changes.empty());
  // Sanity: the bumps themselves would qualify.
  const double w_disp = horizontal_displacement(p.t, p.w, p.v, 100, 690);
  EXPECT_GT(std::abs(w_disp), 3.0 * vehicle::kLaneWidthM);
}

TEST(Detector, SameSignBumpsAreNotPaired) {
  // Two positive bumps (e.g. two right-turn corrections) must not pair.
  Profile p;
  for (double t = 0.0; t <= 30.0; t += 0.05) {
    double w = 0.0;
    if (t >= 5.0 && t < 8.0) w = 0.15 * std::sin(math::kPi * (t - 5.0) / 3.0);
    if (t >= 12.0 && t < 15.0) {
      w = 0.15 * std::sin(math::kPi * (t - 12.0) / 3.0);
    }
    p.t.push_back(t);
    p.w.push_back(w);
    p.v.push_back(10.0);
  }
  EXPECT_TRUE(detect_lane_changes(p.t, p.w, p.v).empty());
}

TEST(Detector, DistantOppositeBumpsAreNotPaired) {
  // Opposite bumps 20 s apart: independent events, not one maneuver.
  Profile p;
  for (double t = 0.0; t <= 40.0; t += 0.05) {
    double w = 0.0;
    if (t >= 5.0 && t < 8.0) w = 0.15 * std::sin(math::kPi * (t - 5.0) / 3.0);
    if (t >= 28.0 && t < 31.0) {
      w = -0.15 * std::sin(math::kPi * (t - 28.0) / 3.0);
    }
    p.t.push_back(t);
    p.w.push_back(w);
    p.v.push_back(10.0);
  }
  LaneChangeDetectorConfig cfg;
  cfg.max_bump_gap_s = 4.0;
  EXPECT_TRUE(detect_lane_changes(p.t, p.w, p.v, cfg).empty());
}

TEST(Detector, BackToBackLaneChanges) {
  const LaneChangeManeuver left(LaneChangeDirection::kLeft, 0.16, 10.0);
  const LaneChangeManeuver right(LaneChangeDirection::kRight, 0.16, 10.0);
  Profile p;
  const double t1 = 5.0;
  const double t2 = t1 + left.duration_s() + 6.0;
  for (double t = 0.0; t <= 30.0; t += 0.05) {
    p.t.push_back(t);
    p.w.push_back(left.steering_rate(t - t1) + right.steering_rate(t - t2));
    p.v.push_back(10.0);
  }
  const auto changes = detect_lane_changes(p.t, p.w, p.v);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].type, LaneChangeType::kLeft);
  EXPECT_EQ(changes[1].type, LaneChangeType::kRight);
}

TEST(HorizontalDisplacement, MatchesClosedFormForManeuver) {
  const LaneChangeManeuver m(LaneChangeDirection::kLeft, 0.14, 9.0);
  const Profile p = maneuver_profile(m, 0.0, 9.0, m.duration_s(), 100.0);
  const double w =
      horizontal_displacement(p.t, p.w, p.v, 0, p.t.size() - 1);
  EXPECT_NEAR(w, m.nominal_lateral_displacement(), 0.3);
}

TEST(HorizontalDisplacement, RangeValidation) {
  const std::vector<double> t{0.0, 0.1, 0.2};
  const std::vector<double> w{0.0, 0.1, 0.0};
  const std::vector<double> v{10.0, 10.0, 10.0};
  EXPECT_THROW(horizontal_displacement(t, w, v, 2, 1),
               std::invalid_argument);
  EXPECT_THROW(horizontal_displacement(t, w, v, 0, 3),
               std::invalid_argument);
}

TEST(AdjustVelocity, ScalesByCosAlphaInsideWindow) {
  const LaneChangeManeuver m(LaneChangeDirection::kLeft, 0.18, 8.0);
  const Profile p = maneuver_profile(m, 2.0, 8.0, 12.0, 50.0);
  const auto changes = detect_lane_changes(p.t, p.w, p.v);
  ASSERT_EQ(changes.size(), 1u);
  const auto adjusted = adjust_longitudinal_velocity(p.t, p.w, p.v, changes);
  ASSERT_EQ(adjusted.size(), p.v.size());
  // Outside the window nothing changes.
  EXPECT_DOUBLE_EQ(adjusted.front(), p.v.front());
  EXPECT_DOUBLE_EQ(adjusted.back(), p.v.back());
  // At mid-maneuver alpha is maximal, so v_L < v, matching cos(alpha_max).
  const double t_mid = 2.0 + m.duration_s() / 2.0;
  std::size_t i_mid = 0;
  for (std::size_t i = 0; i < p.t.size(); ++i) {
    if (p.t[i] <= t_mid) i_mid = i;
  }
  const double alpha_max = m.heading_deviation(m.duration_s() / 2.0);
  EXPECT_LT(adjusted[i_mid], p.v[i_mid]);
  EXPECT_NEAR(adjusted[i_mid], p.v[i_mid] * std::cos(alpha_max), 0.05);
}

TEST(AdjustVelocity, NoChangesNoEffect) {
  const std::vector<double> t{0.0, 0.1, 0.2};
  const std::vector<double> w{0.0, 0.1, 0.0};
  const std::vector<double> v{10.0, 10.0, 10.0};
  const auto adjusted = adjust_longitudinal_velocity(t, w, v, {});
  EXPECT_EQ(adjusted, v);
}

// Parameterized: detection works across the paper's 15-65 km/h band.
class DetectorSpeed : public ::testing::TestWithParam<double> {};

TEST_P(DetectorSpeed, DetectsAcrossSpeeds) {
  const double v = GetParam() / 3.6;
  const LaneChangeManeuver m(LaneChangeDirection::kRight, 0.15, v);
  const Profile p = maneuver_profile(m, 4.0, v, 25.0, 25.0);
  const auto changes = detect_lane_changes(p.t, p.w, p.v);
  ASSERT_EQ(changes.size(), 1u) << "speed " << GetParam() << " km/h";
  EXPECT_EQ(changes[0].type, LaneChangeType::kRight);
}

INSTANTIATE_TEST_SUITE_P(Speeds, DetectorSpeed,
                         ::testing::Values(15.0, 25.0, 40.0, 55.0, 65.0));

}  // namespace
}  // namespace rge::core
