// Failure-injection tests: the pipeline must degrade gracefully — never
// crash, never emit NaNs — under missing streams, extreme noise, stops,
// disturbances, and hostile traces.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "baselines/ekf_altitude.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "math/angles.hpp"
#include "road/network.hpp"
#include "sensors/smartphone.hpp"
#include "testing/fault_injection.hpp"
#include "vehicle/trip.hpp"

namespace rge::core {
namespace {

using math::deg2rad;

struct Scenario {
  road::Road road;
  vehicle::Trip trip;
  sensors::SensorTrace trace;
};

Scenario make_scenario(std::uint64_t seed,
                       const sensors::SmartphoneConfig& pc_in = {},
                       const vehicle::TripConfig& tc_in = {}) {
  Scenario sc{road::make_table3_route(2019), {}, {}};
  vehicle::TripConfig tc = tc_in;
  tc.seed = seed;
  sc.trip = vehicle::simulate_trip(sc.road, tc);
  sensors::SmartphoneConfig pc = pc_in;
  pc.seed = seed + 33;
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       vehicle::VehicleParams{}, pc);
  return sc;
}

void expect_finite(const GradeTrack& track) {
  for (double g : track.grade) ASSERT_TRUE(std::isfinite(g));
  for (double p : track.grade_var) {
    ASSERT_TRUE(std::isfinite(p));
    ASSERT_GT(p, 0.0);
  }
  for (double v : track.speed) ASSERT_TRUE(std::isfinite(v));
}

TEST(FailureInjection, MissingCanBusStream) {
  Scenario sc = make_scenario(1);
  sc.trace.canbus_speed.clear();  // no OBD dongle
  const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  EXPECT_EQ(res.tracks.size(), 3u);
  expect_finite(res.fused);
  EXPECT_LT(evaluate_track(res.fused, sc.trip).median_abs_deg, 0.8);
}

TEST(FailureInjection, MissingAllButGps) {
  Scenario sc = make_scenario(2);
  sc.trace.canbus_speed.clear();
  sc.trace.speedometer.clear();
  sc.trace.barometer_alt.clear();
  const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  // GPS + IMU-derived velocities remain.
  EXPECT_EQ(res.tracks.size(), 2u);
  expect_finite(res.fused);
}

TEST(FailureInjection, NoVelocityAnywhereThrows) {
  Scenario sc = make_scenario(3);
  sc.trace.canbus_speed.clear();
  sc.trace.speedometer.clear();
  sc.trace.gps.clear();
  // The IMU source needs GPS to seed/blend; with nothing left the
  // pipeline must refuse rather than hallucinate.
  PipelineConfig cfg;
  cfg.use_imu = false;
  EXPECT_THROW(estimate_gradient(sc.trace, vehicle::VehicleParams{}, cfg),
               std::invalid_argument);
}

TEST(FailureInjection, TotalGpsOutage) {
  sensors::SmartphoneConfig pc;
  pc.gps_outages = {{0.0, 1e9}};  // never a valid fix
  const Scenario sc = make_scenario(4, pc);
  const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  expect_finite(res.fused);
  // Speedometer/CAN still carry the filter.
  EXPECT_LT(evaluate_track(res.fused, sc.trip).median_abs_deg, 0.8);
}

TEST(FailureInjection, ExtremeSensorNoise) {
  sensors::SmartphoneConfig pc;
  pc.accel_white_sigma = 0.5;
  pc.gyro_white_sigma = 0.05;
  pc.canbus_sigma = 0.5;
  pc.speedometer_sigma = 1.5;
  pc.gps_speed_sigma = 1.5;
  const Scenario sc = make_scenario(5, pc);
  const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  expect_finite(res.fused);
  // Accuracy degrades but stays bounded (the clamp keeps theta physical).
  for (double g : res.fused.grade) EXPECT_LE(std::abs(g), 0.36);
}

TEST(FailureInjection, ConstantPhoneDisturbances) {
  sensors::SmartphoneConfig pc;
  pc.disturbances_per_minute = 20.0;  // phone rattling in a loose mount
  const Scenario sc = make_scenario(6, pc);
  const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  expect_finite(res.fused);
  EXPECT_LT(evaluate_track(res.fused, sc.trip).mre, 0.6);
}

TEST(FailureInjection, StopAndGoTraffic) {
  vehicle::TripConfig tc;
  tc.stops_per_km = 3.0;
  tc.cruise_speed_mps = 8.0;
  const Scenario sc = make_scenario(7, {}, tc);
  const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  expect_finite(res.fused);
  // Stops break observability temporarily; bounded degradation only.
  EXPECT_LT(evaluate_track(res.fused, sc.trip).median_abs_deg, 1.0);
}

TEST(FailureInjection, LargeMountMisalignment) {
  sensors::SmartphoneConfig pc;
  pc.mount_yaw_rad = deg2rad(12.0);  // phone wedged at an angle
  const Scenario sc = make_scenario(8, pc);
  const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  expect_finite(res.fused);
  EXPECT_LT(evaluate_track(res.fused, sc.trip).mre, 0.5);
}

TEST(FailureInjection, DuplicateTimestampsInTrace) {
  Scenario sc = make_scenario(9);
  // A logging hiccup that replays a block of IMU samples out of order.
  testing::apply_fault(
      sc.trace, testing::make_fault(testing::FaultKind::kDuplicateImuBlock));
  const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  expect_finite(res.fused);
}

// Every standard fault mode from the scenario harness, against the full
// pipeline: the contract is "reject cleanly or degrade gracefully" — a
// clean std::invalid_argument is acceptable, but anything the pipeline
// does return must pass GradeTrack::validate() on the fused track AND
// every per-source track, with finite grades throughout.
TEST(FailureInjection, EveryFaultModeValidatesOrRejects) {
  for (const testing::FaultKind kind : testing::standard_fault_modes()) {
    SCOPED_TRACE(testing::fault_name(kind));
    Scenario sc = make_scenario(40 + static_cast<std::uint64_t>(kind));
    testing::apply_fault(sc.trace, testing::make_fault(kind));
    try {
      const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
      EXPECT_NO_THROW(res.fused.validate());
      expect_finite(res.fused);
      EXPECT_FALSE(res.fused.t.empty());
      for (const auto& track : res.tracks) {
        EXPECT_NO_THROW(track.validate());
        expect_finite(track);
      }
    } catch (const std::invalid_argument&) {
      // Clean rejection of an unusable trace is a valid outcome.
    }
  }
}

TEST(FailureInjection, NanSpikesRejectedWhenSanitizerDisabled) {
  Scenario sc = make_scenario(12);
  testing::apply_fault(sc.trace,
                       testing::make_fault(testing::FaultKind::kNanSpikes));
  ASSERT_FALSE(sensors::trace_is_finite(sc.trace));
  // With sanitization on (the default) the poisoned samples are dropped
  // and the estimate stays finite and useful.
  const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  expect_finite(res.fused);
  EXPECT_LT(evaluate_track(res.fused, sc.trip).median_abs_deg, 0.8);
}

// ---- exact sanitizer accounting -----------------------------------------
// The fuzz tier checks sanitizer *conservation* (kept + dropped == fed) on
// arbitrary fault stacks; these tests pin the exact per-stream counts on
// hand-built corruptions, so an off-by-one in either pass (finiteness or
// order) fails loudly rather than as a drifted fuzz invariant.

std::size_t total_samples(const sensors::SensorTrace& t) {
  return t.imu.size() + t.gps.size() + t.speedometer.size() +
         t.canbus_speed.size() + t.barometer_alt.size() +
         t.engine_torque.size() + t.active_gear.size();
}

TEST(SanitizerExactCounts, NanBurstInImuDropsExactlyThoseSamples) {
  Scenario sc = make_scenario(21);
  ASSERT_GE(sc.trace.imu.size(), 140u);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 100; i < 120; ++i) {
    sc.trace.imu[i].accel_forward = nan;  // 20-sample NaN burst
  }
  sc.trace.imu[130].gyro_z = nan;             // plus one lone spike
  sc.trace.gps[3].position.latitude_deg = nan;  // and one poisoned fix

  const std::size_t fed = total_samples(sc.trace);
  sensors::SensorTrace cleaned = sc.trace;
  const auto rep = sensors::sanitize_trace(cleaned);
  EXPECT_EQ(rep.dropped_imu, 21u);
  EXPECT_EQ(rep.dropped_gps, 1u);
  EXPECT_EQ(rep.dropped_scalar, 0u);
  EXPECT_EQ(rep.dropped_unordered, 0u);
  EXPECT_EQ(rep.total(), 22u);
  EXPECT_EQ(total_samples(cleaned) + rep.total(), fed);
  EXPECT_TRUE(sensors::trace_is_clean(cleaned));

  // The pipeline reports the identical accounting in PipelineResult.
  const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  EXPECT_EQ(res.sanitize.dropped_imu, 21u);
  EXPECT_EQ(res.sanitize.dropped_gps, 1u);
  EXPECT_EQ(res.sanitize.total(), 22u);
  expect_finite(res.fused);
}

TEST(SanitizerExactCounts, InfAltitudeDropsOnlyScalarStreams) {
  Scenario sc = make_scenario(22);
  ASSERT_GE(sc.trace.barometer_alt.size(), 30u);
  ASSERT_GE(sc.trace.speedometer.size(), 10u);
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t i = 10; i < 17; ++i) {
    sc.trace.barometer_alt[i].value = (i % 2 == 0) ? inf : -inf;  // 7 samples
  }
  sc.trace.speedometer[5].t = std::numeric_limits<double>::quiet_NaN();

  sensors::SensorTrace cleaned = sc.trace;
  const auto rep = sensors::sanitize_trace(cleaned);
  // A NaN *timestamp* is a finiteness drop, not an order drop: the order
  // pass must never see it (it would poison the running maximum).
  EXPECT_EQ(rep.dropped_scalar, 8u);
  EXPECT_EQ(rep.dropped_imu, 0u);
  EXPECT_EQ(rep.dropped_gps, 0u);
  EXPECT_EQ(rep.dropped_unordered, 0u);
  EXPECT_TRUE(sensors::trace_is_clean(cleaned));

  const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  EXPECT_EQ(res.sanitize.dropped_scalar, 8u);
  EXPECT_EQ(res.sanitize.total(), 8u);
  expect_finite(res.fused);
}

TEST(SanitizerExactCounts, OutOfOrderTimestampsDropRegressiveSamplesOnly) {
  Scenario sc = make_scenario(23);
  ASSERT_GE(sc.trace.imu.size(), 300u);
  // Rewind a 5-sample IMU block to an earlier time: every sample in the
  // block regresses below the running max, later samples do not.
  for (std::size_t i = 200; i < 205; ++i) {
    sc.trace.imu[i].t = sc.trace.imu[150].t;
  }
  // One regressive GPS fix; equal (duplicate) timestamps must be kept.
  ASSERT_GE(sc.trace.gps.size(), 10u);
  sc.trace.gps[7].t = sc.trace.gps[5].t - 0.25;
  sc.trace.canbus_speed[4].t = sc.trace.canbus_speed[3].t;  // dup, kept

  const std::size_t fed = total_samples(sc.trace);
  sensors::SensorTrace cleaned = sc.trace;
  const auto rep = sensors::sanitize_trace(cleaned);
  EXPECT_EQ(rep.dropped_unordered, 6u);
  EXPECT_EQ(rep.dropped_imu, 0u);
  EXPECT_EQ(rep.dropped_gps, 0u);
  EXPECT_EQ(rep.dropped_scalar, 0u);
  EXPECT_EQ(total_samples(cleaned) + rep.total(), fed);
  EXPECT_TRUE(sensors::trace_is_ordered(cleaned));

  const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  EXPECT_EQ(res.sanitize.dropped_unordered, 6u);
  EXPECT_EQ(res.sanitize.total(), 6u);
  expect_finite(res.fused);
}

TEST(FailureInjection, VeryShortTrace) {
  Scenario sc = make_scenario(10);
  sc.trace.imu.resize(20);  // 0.4 s of data
  sc.trace.gps.resize(1);
  sc.trace.speedometer.resize(4);
  sc.trace.canbus_speed.resize(4);
  sc.trace.barometer_alt.resize(4);
  const auto res = estimate_gradient(sc.trace, vehicle::VehicleParams{});
  expect_finite(res.fused);
  EXPECT_FALSE(res.fused.t.empty());
}

TEST(FailureInjection, BaselineEkfSurvivesMissingBarometer) {
  Scenario sc = make_scenario(11);
  sc.trace.barometer_alt.clear();
  // The altitude baseline degrades to velocity-only but must not crash.
  const auto track =
      baselines::run_altitude_ekf(sc.trace, vehicle::VehicleParams{});
  expect_finite(track);
}

}  // namespace
}  // namespace rge::core
