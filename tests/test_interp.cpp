// Unit tests for interpolation / resampling helpers.
#include "math/interp.hpp"

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

namespace rge::math {
namespace {

TEST(LinearInterpolator, ExactAtKnotsLinearBetween) {
  const LinearInterpolator f({0.0, 1.0, 3.0}, {0.0, 2.0, -2.0});
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(0.5), 1.0);
  EXPECT_DOUBLE_EQ(f(2.0), 0.0);
}

TEST(LinearInterpolator, ClampsOutsideRange) {
  const LinearInterpolator f({1.0, 2.0}, {5.0, 7.0});
  EXPECT_DOUBLE_EQ(f(0.0), 5.0);
  EXPECT_DOUBLE_EQ(f(99.0), 7.0);
  EXPECT_DOUBLE_EQ(f.x_min(), 1.0);
  EXPECT_DOUBLE_EQ(f.x_max(), 2.0);
}

TEST(LinearInterpolator, Validation) {
  EXPECT_THROW(LinearInterpolator({1.0, 1.0}, {0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(LinearInterpolator({2.0, 1.0}, {0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(LinearInterpolator({1.0}, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(LinearInterpolator({}, {}), std::invalid_argument);
  // A single knot is a constant function.
  const LinearInterpolator c({1.0}, {3.0});
  EXPECT_DOUBLE_EQ(c(-5.0), 3.0);
  EXPECT_DOUBLE_EQ(c(5.0), 3.0);
}

TEST(LinearInterpolator, Sample) {
  const LinearInterpolator f({0.0, 2.0}, {0.0, 4.0});
  const auto ys = f.sample(5);
  ASSERT_EQ(ys.size(), 5u);
  EXPECT_DOUBLE_EQ(ys[0], 0.0);
  EXPECT_DOUBLE_EQ(ys[2], 2.0);
  EXPECT_DOUBLE_EQ(ys[4], 4.0);
}

TEST(Linspace, EdgeCases) {
  EXPECT_TRUE(linspace(0.0, 1.0, 0).empty());
  const auto one = linspace(3.0, 9.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 3.0);
  const auto xs = linspace(0.0, 1.0, 11);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_NEAR(xs[5], 0.5, 1e-15);
}

TEST(CumulativeTrapezoid, IntegratesLinear) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{0.0, 1.0, 2.0, 3.0};  // integral = x^2/2
  const auto c = cumulative_trapezoid(x, y);
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
  EXPECT_DOUBLE_EQ(c[3], 4.5);
  EXPECT_THROW(cumulative_trapezoid(x, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(FiniteDifference, RecoverLinearSlope) {
  const std::vector<double> x{0.0, 1.0, 2.0, 4.0};
  const std::vector<double> y{1.0, 3.0, 5.0, 9.0};
  const auto d = finite_difference(x, y);
  for (double v : d) EXPECT_NEAR(v, 2.0, 1e-12);
  EXPECT_TRUE(finite_difference(std::vector<double>{1.0},
                                std::vector<double>{1.0})[0] == 0.0);
}

TEST(MovingAverage, SmoothsAndPreservesConstant) {
  const std::vector<double> c{2.0, 2.0, 2.0, 2.0};
  const auto sc = moving_average(c, 1);
  for (double v : sc) EXPECT_DOUBLE_EQ(v, 2.0);

  const std::vector<double> spike{0.0, 0.0, 9.0, 0.0, 0.0};
  const auto ss = moving_average(spike, 1);
  EXPECT_DOUBLE_EQ(ss[2], 3.0);
  EXPECT_DOUBLE_EQ(ss[0], 0.0);
  EXPECT_DOUBLE_EQ(ss[1], 3.0);
}

namespace {

/// The pre-optimization O(n*half) implementation, kept as the oracle for
/// the prefix-sum version.
std::vector<double> moving_average_naive(std::span<const double> y,
                                         std::size_t half) {
  const std::size_t n = y.size();
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(n - 1, i + half);
    double acc = 0.0;
    for (std::size_t k = lo; k <= hi; ++k) acc += y[k];
    out[i] = acc / static_cast<double>(hi - lo + 1);
  }
  return out;
}

}  // namespace

TEST(MovingAverage, PrefixSumMatchesNaiveExactlyOnIntegerData) {
  // Integer-valued doubles sum exactly in both orders, so the prefix-sum
  // rewrite must agree bit-for-bit with the per-window oracle here.
  std::vector<double> y;
  std::uint64_t state = 88172645463325252ull;
  for (int i = 0; i < 500; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    y.push_back(static_cast<double>(static_cast<int>(state % 2001) - 1000));
  }
  for (const std::size_t half : {0u, 1u, 4u, 25u, 499u, 1000u}) {
    const auto fast = moving_average(y, half);
    const auto naive = moving_average_naive(y, half);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_EQ(fast[i], naive[i]) << "half=" << half << " i=" << i;
    }
  }
}

TEST(MovingAverage, PrefixSumMatchesNaiveTightlyOnRealData) {
  // On arbitrary doubles the two summation orders can differ by rounding
  // only: the results must agree to near machine precision relative to
  // the window magnitude.
  std::vector<double> y;
  std::uint64_t state = 1442695040888963407ull;
  for (int i = 0; i < 800; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double u =
        static_cast<double>(state >> 11) / 9007199254740992.0;  // [0,1)
    y.push_back((u - 0.5) * 2.0e3);
  }
  for (const std::size_t half : {1u, 7u, 63u, 400u}) {
    const auto fast = moving_average(y, half);
    const auto naive = moving_average_naive(y, half);
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_NEAR(fast[i], naive[i], 1e-9) << "half=" << half << " i=" << i;
    }
  }
}

TEST(MovingAverage, EmptyAndSingleElement) {
  EXPECT_TRUE(moving_average(std::vector<double>{}, 3).empty());
  const auto one = moving_average(std::vector<double>{5.0}, 3);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 5.0);
}

}  // namespace
}  // namespace rge::math
