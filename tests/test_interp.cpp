// Unit tests for interpolation / resampling helpers.
#include "math/interp.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace rge::math {
namespace {

TEST(LinearInterpolator, ExactAtKnotsLinearBetween) {
  const LinearInterpolator f({0.0, 1.0, 3.0}, {0.0, 2.0, -2.0});
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(0.5), 1.0);
  EXPECT_DOUBLE_EQ(f(2.0), 0.0);
}

TEST(LinearInterpolator, ClampsOutsideRange) {
  const LinearInterpolator f({1.0, 2.0}, {5.0, 7.0});
  EXPECT_DOUBLE_EQ(f(0.0), 5.0);
  EXPECT_DOUBLE_EQ(f(99.0), 7.0);
  EXPECT_DOUBLE_EQ(f.x_min(), 1.0);
  EXPECT_DOUBLE_EQ(f.x_max(), 2.0);
}

TEST(LinearInterpolator, Validation) {
  EXPECT_THROW(LinearInterpolator({1.0, 1.0}, {0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(LinearInterpolator({2.0, 1.0}, {0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(LinearInterpolator({1.0}, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(LinearInterpolator({}, {}), std::invalid_argument);
  // A single knot is a constant function.
  const LinearInterpolator c({1.0}, {3.0});
  EXPECT_DOUBLE_EQ(c(-5.0), 3.0);
  EXPECT_DOUBLE_EQ(c(5.0), 3.0);
}

TEST(LinearInterpolator, Sample) {
  const LinearInterpolator f({0.0, 2.0}, {0.0, 4.0});
  const auto ys = f.sample(5);
  ASSERT_EQ(ys.size(), 5u);
  EXPECT_DOUBLE_EQ(ys[0], 0.0);
  EXPECT_DOUBLE_EQ(ys[2], 2.0);
  EXPECT_DOUBLE_EQ(ys[4], 4.0);
}

TEST(Linspace, EdgeCases) {
  EXPECT_TRUE(linspace(0.0, 1.0, 0).empty());
  const auto one = linspace(3.0, 9.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 3.0);
  const auto xs = linspace(0.0, 1.0, 11);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_NEAR(xs[5], 0.5, 1e-15);
}

TEST(CumulativeTrapezoid, IntegratesLinear) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{0.0, 1.0, 2.0, 3.0};  // integral = x^2/2
  const auto c = cumulative_trapezoid(x, y);
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
  EXPECT_DOUBLE_EQ(c[3], 4.5);
  EXPECT_THROW(cumulative_trapezoid(x, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(FiniteDifference, RecoverLinearSlope) {
  const std::vector<double> x{0.0, 1.0, 2.0, 4.0};
  const std::vector<double> y{1.0, 3.0, 5.0, 9.0};
  const auto d = finite_difference(x, y);
  for (double v : d) EXPECT_NEAR(v, 2.0, 1e-12);
  EXPECT_TRUE(finite_difference(std::vector<double>{1.0},
                                std::vector<double>{1.0})[0] == 0.0);
}

TEST(MovingAverage, SmoothsAndPreservesConstant) {
  const std::vector<double> c{2.0, 2.0, 2.0, 2.0};
  const auto sc = moving_average(c, 1);
  for (double v : sc) EXPECT_DOUBLE_EQ(v, 2.0);

  const std::vector<double> spike{0.0, 0.0, 9.0, 0.0, 0.0};
  const auto ss = moving_average(spike, 1);
  EXPECT_DOUBLE_EQ(ss[2], 3.0);
  EXPECT_DOUBLE_EQ(ss[0], 0.0);
  EXPECT_DOUBLE_EQ(ss[1], 3.0);
}

}  // namespace
}  // namespace rge::math
