// Integration tests for the sharded map service.
//
// The load-bearing contract is determinism: tracks crossing tile
// boundaries are split at boundary cell indices (a pure function of the
// road's fusion grid), each shard applies its work in upload order, and
// the published multi-shard map is therefore bit-identical to single-shard
// serial fusion across 1/2/8-thread pools and 1/4/16 shards. On top of
// that: epoch/double-buffered snapshots (readers keep a pinned immutable
// buffer while ingest continues), exact rebalancing, per-shard matcher
// caches, and the concurrency of ingest_one/publish/snapshot (exercised
// under TSan via the tsan-runtime preset).
#include "service/map_service.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/track_fusion.hpp"
#include "math/angles.hpp"
#include "road/network.hpp"
#include "road/road.hpp"
#include "runtime/thread_pool.hpp"

namespace rge::service {
namespace {

/// Deterministic synthetic upload covering s in [s0, s1] of one road.
TrackUpload synth_upload(RoadId road_id, const road::Road& road,
                         std::uint32_t id, double s0, double s1,
                         std::size_t n) {
  TrackUpload up;
  up.road = road_id;
  up.track.source = "synth-" + std::to_string(id);
  std::mt19937 rng(2024u + id);
  std::uniform_real_distribution<double> var(1e-5, 4e-5);
  up.track.t.resize(n);
  up.track.s.resize(n);
  up.track.grade.resize(n);
  up.track.grade_var.resize(n);
  up.track.speed.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(n - 1);
    const double s = s0 + f * (s1 - s0);
    up.track.s[i] = s;
    up.track.t[i] = s / 13.0;
    up.track.grade[i] = road.grade_at(s) + 0.002 * std::sin(0.05 * s + id);
    up.track.grade_var[i] = var(rng);
    up.track.speed[i] = 13.0;
  }
  up.track.validate();
  return up;
}

/// Random partial-trip fleet over every road of the network.
std::vector<TrackUpload> synth_fleet(const road::RoadNetwork& net,
                                     std::size_t n_uploads,
                                     std::uint32_t seed) {
  std::vector<TrackUpload> fleet;
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, net.size() - 1);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (std::size_t v = 0; v < n_uploads; ++v) {
    const auto r = static_cast<RoadId>(pick(rng));
    const road::Road& road = net.roads()[r].road;
    const double len = road.length_m();
    const double s0 = u(rng) * std::max(0.0, len - 150.0);
    const double s1 = std::min(len, s0 + 150.0 + u(rng) * (len - s0 - 150.0));
    const auto n = std::max<std::size_t>(
        32, static_cast<std::size_t>((s1 - s0) / 4.0));
    fleet.push_back(synth_upload(r, road, static_cast<std::uint32_t>(v), s0,
                                 s1, n));
  }
  return fleet;
}

void expect_views_identical(const RoadView& a, const RoadView& b) {
  ASSERT_EQ(a.road, b.road);
  ASSERT_EQ(a.cells, b.cells) << "road " << a.road;
  ASSERT_EQ(a.coverage, b.coverage) << "road " << a.road;
  ASSERT_EQ(a.track.grade, b.track.grade) << "road " << a.road;
  ASSERT_EQ(a.track.grade_var, b.track.grade_var) << "road " << a.road;
  ASSERT_EQ(a.track.speed, b.track.speed) << "road " << a.road;
  ASSERT_EQ(a.track.t, b.track.t) << "road " << a.road;
  ASSERT_EQ(a.track.s, b.track.s) << "road " << a.road;
}

void expect_snapshots_identical(const ServiceSnapshot& a,
                                const ServiceSnapshot& b) {
  ASSERT_EQ(a.roads.size(), b.roads.size());
  for (std::size_t r = 0; r < a.roads.size(); ++r) {
    expect_views_identical(a.roads[r], b.roads[r]);
  }
}

road::RoadNetwork small_city() {
  return road::make_city_network(77, /*total_length_km=*/12.0);
}

MapServiceConfig base_config(std::size_t n_shards) {
  MapServiceConfig cfg;
  cfg.n_shards = n_shards;
  cfg.tile_length_m = 500.0;  // several tiles per road on the small city
  cfg.fusion.distance_step_m = 5.0;
  return cfg;
}

// ---- tiling -------------------------------------------------------------

TEST(MapService, TilePartitionCoversEveryCellExactlyOnce) {
  const MapService svc(small_city(), base_config(4));
  std::size_t tiles_total = 0;
  for (RoadId r = 0; r < svc.n_roads(); ++r) {
    const std::size_t tiles = svc.tiles_of(r);
    tiles_total += tiles;
    ASSERT_GE(tiles, 1u);
    // Tile t owns cells [t*cpt, (t+1)*cpt): with cpt constant per road,
    // the union is [0, grid.n) and the pieces are disjoint by
    // construction; spot-check that the count adds up and the
    // shard assignment is stable and in range.
    for (std::size_t t = 0; t < tiles; ++t) {
      const std::size_t s = svc.shard_of_tile(r, t);
      EXPECT_LT(s, svc.n_shards());
      EXPECT_EQ(s, svc.shard_of_tile(r, t));
    }
    // Roads longer than one tile really do split.
    if (svc.road(r).length_m() > 2.0 * svc.config().tile_length_m) {
      EXPECT_GE(tiles, 2u) << "road " << r;
    }
  }
  EXPECT_EQ(tiles_total, svc.n_tiles());
}

// ---- determinism matrix -------------------------------------------------

TEST(MapService, BitIdenticalAcrossPoolSizesAndShardCounts) {
  const road::RoadNetwork net = small_city();
  const auto fleet = synth_fleet(net, 120, 9);

  // Reference: one shard, one thread, one batch — plain serial fusion.
  MapService ref(net, base_config(1));
  ref.ingest(fleet);
  ref.publish();
  const auto want = ref.snapshot();
  ASSERT_GT(want->epoch, 0u);

  for (const std::size_t n_shards : {1u, 4u, 16u}) {
    std::vector<ShardStats> first_stats;
    for (const std::size_t n_threads : {1u, 2u, 8u}) {
      runtime::ThreadPool pool(n_threads);
      MapService svc(net, base_config(n_shards));
      // Batched ingest through the pool, publishing mid-stream too.
      const std::size_t batch = 37;
      for (std::size_t i = 0; i < fleet.size(); i += batch) {
        const std::vector<TrackUpload> chunk(
            fleet.begin() + static_cast<std::ptrdiff_t>(i),
            fleet.begin() + static_cast<std::ptrdiff_t>(
                                std::min(fleet.size(), i + batch)));
        svc.ingest(chunk, &pool);
      }
      svc.publish(&pool);
      expect_snapshots_identical(*svc.snapshot(), *want);

      // Per-shard sums are a function of the tiling only — identical for
      // every pool size at a fixed shard count.
      const auto stats = svc.shard_stats();
      ASSERT_EQ(stats.size(), n_shards);
      if (n_threads == 1u) {
        first_stats = stats;
      } else {
        for (std::size_t s = 0; s < n_shards; ++s) {
          EXPECT_EQ(stats[s].tracks_ingested,
                    first_stats[s].tracks_ingested)
              << "shard " << s;
          EXPECT_EQ(stats[s].samples_ingested,
                    first_stats[s].samples_ingested)
              << "shard " << s;
          EXPECT_EQ(stats[s].covered_cells, first_stats[s].covered_cells)
              << "shard " << s;
        }
      }
    }
  }
}

TEST(MapService, BoundarySplitMatchesUnshardedAccumulator) {
  // One long road, tiles much shorter than the track: the upload crosses
  // many tile boundaries and lands on many shards, yet every covered
  // cell must hold exactly what one unsplit add_track writes.
  road::RoadBuilder b("split-road");
  b.add_straight(1500.0, math::deg2rad(1.5));
  b.add_straight(1500.0, math::deg2rad(-2.0));
  road::RoadNetwork net;
  net.add(road::NetworkRoad{b.build(), road::RoadClass::kArterial});

  MapServiceConfig cfg = base_config(8);
  cfg.tile_length_m = 200.0;  // ~15 tiles over 3 km
  MapService svc(net, cfg);
  ASSERT_GE(svc.tiles_of(0), 10u);

  const auto up =
      synth_upload(0, net.roads()[0].road, 5, 130.0, 2870.0, 900);
  svc.ingest({up});

  core::FusionAccumulator direct(svc.grid(0), cfg.fusion);
  direct.add_track(up.track);
  const auto want = direct.snapshot_covered();
  const auto got = svc.merged_accumulator(0).snapshot_covered();
  ASSERT_EQ(got.cells, want.cells);
  ASSERT_EQ(got.coverage, want.coverage);  // 1 everywhere: no double adds
  EXPECT_EQ(got.track.grade, want.track.grade);
  EXPECT_EQ(got.track.grade_var, want.track.grade_var);
  EXPECT_EQ(got.track.speed, want.track.speed);
  EXPECT_EQ(got.track.t, want.track.t);
  EXPECT_EQ(got.track.s, want.track.s);

  const auto view = svc.merged_road_view(0);
  EXPECT_EQ(view.cells, want.cells);
  EXPECT_EQ(view.track.grade, want.track.grade);
}

TEST(MapService, IngestOneMatchesBatchIngestWhenSerial) {
  const road::RoadNetwork net = small_city();
  const auto fleet = synth_fleet(net, 40, 31);

  MapService batch(net, base_config(4));
  batch.ingest(fleet);
  batch.publish();

  MapService streaming(net, base_config(4));
  for (const auto& up : fleet) streaming.ingest_one(up);
  streaming.publish();

  expect_snapshots_identical(*streaming.snapshot(), *batch.snapshot());
  EXPECT_EQ(streaming.total_samples_ingested(),
            batch.total_samples_ingested());
}

// ---- serving ------------------------------------------------------------

TEST(MapService, EpochSnapshotsAreImmutableAndPinned) {
  const road::RoadNetwork net = small_city();
  const auto fleet = synth_fleet(net, 30, 3);
  MapService svc(net, base_config(4));

  const auto empty = svc.snapshot();
  EXPECT_EQ(empty->epoch, 0u);
  ASSERT_EQ(empty->roads.size(), net.size());
  for (const auto& view : empty->roads) EXPECT_EQ(view.size(), 0u);

  svc.ingest({fleet.begin(), fleet.begin() + 15});
  EXPECT_EQ(svc.publish(), 1u);
  const auto first = svc.snapshot();
  EXPECT_EQ(first->epoch, 1u);
  std::size_t covered_first = 0;
  for (const auto& view : first->roads) covered_first += view.size();
  EXPECT_GT(covered_first, 0u);

  // More ingest + publish must not disturb the pinned old buffer.
  svc.ingest({fleet.begin() + 15, fleet.end()});
  EXPECT_EQ(svc.publish(), 2u);
  EXPECT_EQ(svc.epoch(), 2u);
  std::size_t covered_again = 0;
  for (const auto& view : first->roads) covered_again += view.size();
  EXPECT_EQ(covered_again, covered_first);
  EXPECT_EQ(first->epoch, 1u);
  // The old snapshot still reads the 15-upload map; epoch 0's is empty.
  EXPECT_EQ(empty->roads[0].size(), 0u);
}

TEST(MapService, RebalancePreservesThePublishedMapBitExact) {
  const road::RoadNetwork net = small_city();
  const auto fleet = synth_fleet(net, 60, 17);
  MapService svc(net, base_config(4));
  svc.ingest(fleet);
  svc.publish();
  const auto before = svc.snapshot();

  for (const std::size_t new_shards : {16u, 1u, 4u}) {
    svc.rebalance(new_shards);
    EXPECT_EQ(svc.n_shards(), new_shards);
    svc.publish();
    expect_snapshots_identical(*svc.snapshot(), *before);
  }
  // And ingest still works after rebalancing.
  const auto more = synth_fleet(net, 5, 23);
  svc.ingest(more);
  svc.publish();
}

TEST(MapService, MatcherIsServedFromTheHomeShardCache) {
  const road::RoadNetwork net = small_city();
  MapService svc(net, base_config(4));
  const auto m0 = svc.matcher(0);
  ASSERT_NE(m0, nullptr);
  EXPECT_EQ(svc.matcher(0).get(), m0.get());  // cached, same instance
  const auto m1 = svc.matcher(1);
  EXPECT_NE(m1.get(), m0.get());
  // The matcher really is the road's geometry.
  const auto fix = m0->match_point(svc.road(0).geo_at(100.0));
  EXPECT_TRUE(fix.valid);
  EXPECT_NEAR(fix.s_m, 100.0, 1.0);
}

TEST(MapService, RejectsBadInputs) {
  const road::RoadNetwork net = small_city();
  EXPECT_THROW(MapService(road::RoadNetwork{}, base_config(4)),
               std::invalid_argument);
  EXPECT_THROW(MapService(net, base_config(0)), std::invalid_argument);
  MapServiceConfig bad_tile = base_config(2);
  bad_tile.tile_length_m = 0.0;
  EXPECT_THROW(MapService(net, bad_tile), std::invalid_argument);

  MapService svc(net, base_config(2));
  TrackUpload up = synth_fleet(net, 1, 1)[0];
  up.road = static_cast<RoadId>(net.size());
  EXPECT_THROW(svc.ingest({up}), std::out_of_range);
  EXPECT_THROW(svc.ingest_one(up), std::out_of_range);
  EXPECT_THROW(svc.rebalance(0), std::invalid_argument);
  EXPECT_THROW(svc.matcher(static_cast<RoadId>(net.size())),
               std::out_of_range);
}

// ---- concurrency (exercised under TSan via the tsan-runtime preset) -----

TEST(MapService, ConcurrentIngestPublishSnapshotIsSafe) {
  const road::RoadNetwork net = small_city();
  const auto fleet = synth_fleet(net, 96, 41);
  MapService svc(net, base_config(4));

  constexpr std::size_t kWriters = 3;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&svc, &fleet, w] {
      for (std::size_t i = w; i < fleet.size(); i += kWriters) {
        svc.ingest_one(fleet[i]);
      }
    });
  }
  std::thread publisher([&svc, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      svc.publish();
    }
  });
  std::vector<std::thread> readers;
  for (int rdr = 0; rdr < 2; ++rdr) {
    readers.emplace_back([&svc, &stop, &reads] {
      std::uint64_t local = 0;
      // do-while: each reader takes at least one snapshot even if the
      // writers finish before this thread is first scheduled.
      do {
        const auto snap = svc.snapshot();
        for (const auto& view : snap->roads) local += view.size();
        ++local;
      } while (!stop.load(std::memory_order_relaxed));
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }

  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  publisher.join();
  for (auto& th : readers) th.join();
  EXPECT_GT(reads.load(), 0u);

  // Concurrent streaming races for per-cell order (so sums are not
  // bit-comparable to serial), but conservation laws hold exactly:
  // every upload's samples landed, and the final published map covers
  // the same cells with the same per-cell coverage as a serial run.
  std::uint64_t expected_samples = 0;
  MapService serial(net, base_config(4));
  for (const auto& up : fleet) {
    expected_samples += up.track.s.size();
    serial.ingest_one(up);
  }
  // total_samples_ingested() uses tile-local attribution, which can
  // count a boundary-straddling sample in two tiles; compare against the
  // serial service (identical routing), not the raw upload sizes.
  EXPECT_GE(svc.total_samples_ingested(), expected_samples / 2);
  EXPECT_EQ(svc.total_samples_ingested(), serial.total_samples_ingested());

  svc.publish();
  serial.publish();
  const auto a = svc.snapshot();
  const auto b = serial.snapshot();
  ASSERT_EQ(a->roads.size(), b->roads.size());
  for (std::size_t r = 0; r < a->roads.size(); ++r) {
    EXPECT_EQ(a->roads[r].cells, b->roads[r].cells) << r;
    EXPECT_EQ(a->roads[r].coverage, b->roads[r].coverage) << r;
  }
}

/// Order-insensitive-enough content checksum for immutability checks: FNV
/// over the exact bit patterns of every view's cells, coverage, and grade.
std::uint64_t snapshot_checksum(const ServiceSnapshot& snap) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& view : snap.roads) {
    mix(view.cells.size());
    for (const auto c : view.cells) mix(c);
    for (const auto c : view.coverage) mix(c);
    for (const double g : view.track.grade) {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(g));
      std::memcpy(&bits, &g, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

TEST(MapService, RebalanceBetweenConcurrentIngestRoundsKeepsReadersSafe) {
  // Phased hostile schedule: rounds of concurrent ingest_one + publish,
  // then writer quiescence, then rebalance to a new shard count — while
  // reader threads run WITHOUT interruption across every phase. Pinned
  // epoch snapshots must stay bit-frozen through rebalance (checksummed
  // every iteration) and the served epoch must never regress. Exercised
  // under TSan via the tsan-runtime preset (name matches MapService\.).
  const road::RoadNetwork net = small_city();
  const auto fleet = synth_fleet(net, 90, 53);
  MapService svc(net, base_config(4));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> epoch_regressions{0};
  std::atomic<std::uint64_t> pin_violations{0};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int rdr = 0; rdr < 2; ++rdr) {
    readers.emplace_back([&] {
      std::shared_ptr<const ServiceSnapshot> pinned;
      std::uint64_t pinned_sum = 0;
      std::uint64_t last_epoch = 0;
      do {
        const auto snap = svc.snapshot();
        if (snap->epoch < last_epoch) {
          epoch_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_epoch = snap->epoch;
        // Re-pin occasionally so the pinned buffer crosses rebalances.
        if (!pinned || (snap->epoch > pinned->epoch + 2)) {
          pinned = snap;
          pinned_sum = snapshot_checksum(*pinned);
        } else if (snapshot_checksum(*pinned) != pinned_sum) {
          pin_violations.fetch_add(1, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      } while (!stop.load(std::memory_order_relaxed));
    });
  }

  const std::size_t shard_plan[] = {9, 1, 4};
  const std::size_t slice = fleet.size() / std::size(shard_plan);
  for (std::size_t round = 0; round < std::size(shard_plan); ++round) {
    // Phase 1: concurrent streaming ingest + publisher.
    const std::size_t lo = round * slice;
    const std::size_t hi =
        (round + 1 == std::size(shard_plan)) ? fleet.size() : lo + slice;
    std::atomic<bool> round_done{false};
    std::vector<std::thread> writers;
    for (std::size_t w = 0; w < 2; ++w) {
      writers.emplace_back([&, w] {
        for (std::size_t i = lo + w; i < hi; i += 2) svc.ingest_one(fleet[i]);
      });
    }
    std::thread publisher([&] {
      while (!round_done.load(std::memory_order_relaxed)) svc.publish();
    });
    for (auto& th : writers) th.join();
    round_done.store(true, std::memory_order_relaxed);
    publisher.join();

    // Phase 2: writers and publisher quiesced (rebalance's documented
    // precondition); readers are still running. Rebalancing must
    // preserve the published map bit-exactly.
    svc.publish();
    const auto before = svc.snapshot();
    const std::uint64_t before_sum = snapshot_checksum(*before);
    svc.rebalance(shard_plan[round]);
    EXPECT_EQ(svc.n_shards(), shard_plan[round]);
    svc.publish();
    const auto after = svc.snapshot();
    EXPECT_EQ(snapshot_checksum(*after), before_sum) << "round " << round;
    expect_snapshots_identical(*after, *before);
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();
  EXPECT_EQ(epoch_regressions.load(), 0u);
  EXPECT_EQ(pin_violations.load(), 0u);
  EXPECT_GT(reads.load(), 0u);

  // Conservation after the full phased schedule: same cells and coverage
  // as one serial pass over the whole fleet.
  MapService serial(net, base_config(4));
  for (const auto& up : fleet) serial.ingest_one(up);
  serial.publish();
  EXPECT_EQ(svc.total_samples_ingested(), serial.total_samples_ingested());
  const auto a = svc.snapshot();
  const auto b = serial.snapshot();
  ASSERT_EQ(a->roads.size(), b->roads.size());
  for (std::size_t r = 0; r < a->roads.size(); ++r) {
    EXPECT_EQ(a->roads[r].cells, b->roads[r].cells) << r;
    EXPECT_EQ(a->roads[r].coverage, b->roads[r].coverage) << r;
  }
}

}  // namespace
}  // namespace rge::service
