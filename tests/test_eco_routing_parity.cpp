// Integration parity for network-scale eco-routing: on both tentpole
// graphs — the ~10.9k-edge OSM-like city and the 164.8 km Table-III
// network stitched from *fused* (pipeline-estimated) grade profiles — ALT
// queries must return bit-identical costs and identical paths to plain
// CSR Dijkstra for 1000+ random origin/destination pairs under every cost
// metric, and both must match the legacy RouteGraph::shortest_path on a
// spot-check subset.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "math/rng.hpp"
#include "planning/city_gen.hpp"
#include "planning/csr_graph.hpp"
#include "road/network.hpp"
#include "runtime/thread_pool.hpp"
#include "testing/network_survey.hpp"

namespace rge::planning {
namespace {

constexpr Metric kAllMetrics[] = {Metric::kDistance, Metric::kTime,
                                  Metric::kFuel, Metric::kCo2};
constexpr std::size_t kPairs = 1000;

std::vector<std::pair<std::size_t, std::size_t>> random_pairs(
    std::size_t n_nodes, std::size_t count, std::uint64_t seed) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(count);
  math::Rng rng(seed);
  const auto hi = static_cast<std::int64_t>(n_nodes) - 1;
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<std::size_t>(rng.uniform_int(0, hi)),
                       static_cast<std::size_t>(rng.uniform_int(0, hi)));
  }
  return pairs;
}

void expect_identical(const RouteGraph::Route& a, const RouteGraph::Route& b,
                      const char* what, std::size_t from, std::size_t to) {
  ASSERT_EQ(a.found, b.found) << what << " " << from << "->" << to;
  if (!a.found) return;
  ASSERT_EQ(a.cost, b.cost) << what << " " << from << "->" << to;
  ASSERT_EQ(a.edges, b.edges) << what << " " << from << "->" << to;
  ASSERT_EQ(a.nodes, b.nodes) << what << " " << from << "->" << to;
}

void check_parity(const RouteGraph& g, std::uint64_t pair_seed,
                  std::size_t legacy_every) {
  const CostModel model;
  const CsrGraph csr(g, model);
  QueryContext ctx;
  const auto pairs = random_pairs(g.node_count(), kPairs, pair_seed);
  std::size_t found = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto [from, to] = pairs[i];
    for (const Metric m : kAllMetrics) {
      const auto dij = csr.route(from, to, m, ctx, /*use_alt=*/false);
      const auto alt = csr.route(from, to, m, ctx, /*use_alt=*/true);
      expect_identical(dij, alt, metric_name(m), from, to);
      if (dij.found) ++found;
      if (i % legacy_every == 0) {
        const auto legacy = g.shortest_path(from, to, [&](const Edge& e) {
          const double speed =
              e.speed_mps > 0.0 ? e.speed_mps : model.default_speed_mps;
          switch (m) {
            case Metric::kDistance: return edge_cost_distance(e);
            case Metric::kTime: return edge_cost_time(e, speed);
            case Metric::kFuel: return edge_cost_fuel(e, speed, model.vsp);
            case Metric::kCo2:
              return edge_cost_fuel(e, speed, model.vsp) * model.co2_g_per_gal;
          }
          return 0.0;
        });
        expect_identical(legacy, dij, metric_name(m), from, to);
      }
    }
  }
  // The generators produce connected graphs; near-all pairs must route.
  EXPECT_GT(found, pairs.size() * std::size_t{3});
}

TEST(EcoRoutingParity, OsmCityAltMatchesDijkstraOn1kPairs) {
  const RouteGraph g = make_osm_city();  // 52x52, ~10.9k directed edges
  ASSERT_GE(g.edge_count(), 10000u);
  check_parity(g, /*pair_seed=*/42, /*legacy_every=*/50);
}

TEST(EcoRoutingParity, Table3NetworkFromFusedGradeMapMatchesOn1kPairs) {
  // Full stack: simulate one phone trip per road of the 164.8 km network,
  // run each through the estimation pipeline, fuse per-road grade maps,
  // stitch the routing graph from the *estimated* profiles, then require
  // ALT/Dijkstra parity on it.
  const road::RoadNetwork net = road::make_city_network(2019);
  runtime::ThreadPool pool(4);
  const auto profiles =
      testing::survey_network_grades(net, /*trips_per_road=*/1,
                                     /*base_seed=*/9000, /*step_m=*/25.0,
                                     &pool);
  const RouteGraph g = build_network_graph(net, profiles, 25.0);
  ASSERT_GT(g.node_count(), 100u);
  check_parity(g, /*pair_seed=*/43, /*legacy_every=*/50);
}

TEST(EcoRoutingParity, SurveyIsDeterministicAcrossThreadCounts) {
  // The survey seeds every trip from (base_seed, road index) alone, so the
  // thread pool must not change a single bit of the fused profiles.
  road::RoadNetwork net;
  const road::RoadNetwork full = road::make_city_network(2019);
  for (std::size_t i = 0; i < 4 && i < full.size(); ++i) {
    net.add(full.roads()[i]);
  }
  const auto serial =
      testing::survey_network_grades(net, 1, 9000, 25.0, nullptr);
  runtime::ThreadPool pool(3);
  const auto parallel =
      testing::survey_network_grades(net, 1, 9000, 25.0, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "road " << i;
  }
}

TEST(EcoRoutingParity, FusedAndGroundTruthGraphsShareTopology) {
  road::RoadNetwork net;
  const road::RoadNetwork full = road::make_city_network(2019);
  for (std::size_t i = 0; i < 6 && i < full.size(); ++i) {
    net.add(full.roads()[i]);
  }
  const auto truth = testing::survey_network_grades(net, 0, 9000, 25.0);
  runtime::ThreadPool pool(3);
  const auto fused =
      testing::survey_network_grades(net, 1, 9000, 25.0, &pool);
  const RouteGraph gt = build_network_graph(net, truth, 25.0);
  const RouteGraph fg = build_network_graph(net, fused, 25.0);
  ASSERT_EQ(gt.node_count(), fg.node_count());
  ASSERT_EQ(gt.edge_count(), fg.edge_count());
  double grade_err = 0.0;
  std::size_t n = 0;
  for (std::size_t ei = 0; ei < gt.edge_count(); ++ei) {
    ASSERT_EQ(gt.edge(ei).from, fg.edge(ei).from);
    ASSERT_EQ(gt.edge(ei).to, fg.edge(ei).to);
    ASSERT_EQ(gt.edge(ei).grades.size(), fg.edge(ei).grades.size());
    for (std::size_t k = 0; k < gt.edge(ei).grades.size(); ++k) {
      grade_err += std::abs(gt.edge(ei).grades[k] - fg.edge(ei).grades[k]);
      ++n;
    }
  }
  ASSERT_GT(n, 0u);
  // Single-trip estimates track ground truth to a degree-level mean error;
  // this is a smoke bound, the pipeline's accuracy has its own suites.
  EXPECT_LT(grade_err / static_cast<double>(n), 0.03);
}

}  // namespace
}  // namespace rge::planning
