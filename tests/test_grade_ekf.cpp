// Unit tests for the road-gradient EKF (Eq. 5 state space + EKF).
#include "core/grade_ekf.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"
#include "math/rng.hpp"

namespace rge::core {
namespace {

using math::deg2rad;

constexpr double kG = 9.80665;

/// Synthetic drive on a constant grade: the accelerometer reads
/// a + g*sin(theta); velocity measurements see the true v.
struct SyntheticDrive {
  std::vector<double> t;
  std::vector<double> f;  // specific force
  std::vector<VelocityMeasurement> meas;
  double final_v = 0.0;
};

SyntheticDrive constant_grade_drive(double grade_rad, double duration_s,
                                    double accel_noise, double vel_noise,
                                    std::uint64_t seed = 1,
                                    double meas_rate = 10.0) {
  SyntheticDrive d;
  math::Rng rng(seed);
  const double dt = 0.02;  // 50 Hz
  double v = 10.0;
  double next_meas = 0.0;
  for (double t = 0.0; t <= duration_s; t += dt) {
    // Driver gently varies acceleration (gives the filter excitation).
    const double a = 0.5 * std::sin(0.4 * t);
    d.t.push_back(t);
    d.f.push_back(a + kG * std::sin(grade_rad) +
                  rng.gaussian(0.0, accel_noise));
    if (t >= next_meas) {
      next_meas += 1.0 / meas_rate;
      d.meas.push_back(VelocityMeasurement{
          t, v + rng.gaussian(0.0, vel_noise), vel_noise * vel_noise});
    }
    v += a * dt;
  }
  d.final_v = v;
  return d;
}

// The Eq. 4 drift term slightly biases constant-grade scenarios (it models
// grade *change*); recovery tests therefore disable it and a dedicated test
// covers its behaviour.
GradeEkfConfig no_drift_cfg() {
  GradeEkfConfig cfg;
  cfg.use_paper_drift_term = false;
  return cfg;
}

TEST(GradeEkf, RecoversConstantUphill) {
  const double grade = deg2rad(3.0);
  const auto d = constant_grade_drive(grade, 60.0, 0.05, 0.2);
  const auto track = run_grade_ekf("test", d.t, d.f, d.meas,
                                   vehicle::VehicleParams{}, no_drift_cfg());
  ASSERT_FALSE(track.grade.empty());
  EXPECT_NEAR(track.grade.back(), grade, deg2rad(0.3));
  EXPECT_NEAR(track.speed.back(), d.final_v, 0.3);
}

TEST(GradeEkf, RecoversDownhillWithSign) {
  const double grade = deg2rad(-4.0);
  const auto d = constant_grade_drive(grade, 60.0, 0.05, 0.2, 2);
  const auto track = run_grade_ekf("test", d.t, d.f, d.meas,
                                   vehicle::VehicleParams{}, no_drift_cfg());
  // Average the converged tail (single samples carry the filter's own
  // random-walk jitter).
  double tail = 0.0;
  std::size_t n_tail = 0;
  for (std::size_t i = track.t.size() * 3 / 4; i < track.t.size(); ++i) {
    tail += track.grade[i];
    ++n_tail;
  }
  tail /= static_cast<double>(n_tail);
  EXPECT_NEAR(tail, grade, deg2rad(0.35));
  EXPECT_LT(tail, 0.0);
}

TEST(GradeEkf, VarianceDecreasesOverTime) {
  const auto d = constant_grade_drive(deg2rad(2.0), 30.0, 0.05, 0.2, 3);
  const auto track = run_grade_ekf("test", d.t, d.f, d.meas,
                                   vehicle::VehicleParams{});
  ASSERT_GT(track.grade_var.size(), 10u);
  EXPECT_LT(track.grade_var.back(), track.grade_var.front());
}

TEST(GradeEkf, TracksGradeStep) {
  // Grade jumps from 0 to 3 degrees mid-drive; the filter must follow
  // within a few seconds.
  SyntheticDrive d;
  math::Rng rng(4);
  const double dt = 0.02;
  double v = 12.0;
  double next_meas = 0.0;
  for (double t = 0.0; t <= 80.0; t += dt) {
    const double grade = t < 40.0 ? 0.0 : deg2rad(3.0);
    const double a = 0.4 * std::sin(0.3 * t);
    d.t.push_back(t);
    d.f.push_back(a + kG * std::sin(grade) + rng.gaussian(0.0, 0.05));
    if (t >= next_meas) {
      next_meas += 0.1;
      d.meas.push_back(
          VelocityMeasurement{t, v + rng.gaussian(0.0, 0.2), 0.04});
    }
    v += a * dt;
  }
  const auto track = run_grade_ekf("test", d.t, d.f, d.meas,
                                   vehicle::VehicleParams{});
  // Well before the step: near zero. Well after: near 3 degrees.
  double before = 0.0;
  double after = 0.0;
  for (std::size_t i = 0; i < track.t.size(); ++i) {
    if (track.t[i] < 39.0) before = track.grade[i];
    if (track.t[i] < 79.0) after = track.grade[i];
  }
  EXPECT_NEAR(before, 0.0, deg2rad(0.4));
  EXPECT_NEAR(after, deg2rad(3.0), deg2rad(0.4));
}

TEST(GradeEkf, GatingRejectsVelocityGlitch) {
  GradeEkf ekf(vehicle::VehicleParams{}, GradeEkfConfig{}, 10.0);
  for (int i = 0; i < 500; ++i) {
    ekf.predict(0.0, 0.02);
    if (i % 5 == 0) {
      EXPECT_TRUE(ekf.update_velocity(10.0, 0.04));
    }
  }
  const double grade_before = ekf.grade();
  // A 40 m/s GPS glitch must be gated out.
  EXPECT_FALSE(ekf.update_velocity(50.0, 0.04));
  EXPECT_NEAR(ekf.grade(), grade_before, 1e-12);
}

TEST(GradeEkf, GateCanBeDisabled) {
  GradeEkfConfig cfg;
  cfg.gate_nis = 0.0;
  GradeEkf ekf(vehicle::VehicleParams{}, cfg, 10.0);
  ekf.predict(0.0, 0.02);
  EXPECT_TRUE(ekf.update_velocity(50.0, 0.04));  // accepted, not gated
}

TEST(GradeEkf, PaperDriftTermIsSmall) {
  // The Eq. 4 drift term should barely move theta on its own.
  GradeEkfConfig with;
  GradeEkfConfig without;
  without.use_paper_drift_term = false;
  GradeEkf a(vehicle::VehicleParams{}, with, 15.0, deg2rad(2.0));
  GradeEkf b(vehicle::VehicleParams{}, without, 15.0, deg2rad(2.0));
  for (int i = 0; i < 100; ++i) {
    a.predict(1.0, 0.02);
    b.predict(1.0, 0.02);
  }
  EXPECT_NEAR(a.grade(), b.grade(), deg2rad(0.2));
  EXPECT_NE(a.grade(), b.grade());  // but not identical
}

TEST(GradeEkf, SpeedStaysNonNegative) {
  GradeEkf ekf(vehicle::VehicleParams{}, GradeEkfConfig{}, 0.5);
  for (int i = 0; i < 200; ++i) {
    ekf.predict(-3.0, 0.02);  // hard braking
  }
  EXPECT_GE(ekf.speed(), 0.0);
}

TEST(GradeEkf, GradeStaysWithinPhysicalClamp) {
  GradeEkfConfig cfg;
  cfg.grade_process_psd = 1e-2;  // very loose
  GradeEkf ekf(vehicle::VehicleParams{}, cfg, 10.0);
  math::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    ekf.predict(5.0, 0.02);  // persistent absurd force
    if (i % 5 == 0) ekf.update_velocity(10.0, 0.01);
  }
  EXPECT_LE(std::abs(ekf.grade()), 0.36);
}

TEST(RunGradeEkf, Validation) {
  const std::vector<double> t{0.0, 0.02};
  const std::vector<double> f{0.0};
  EXPECT_THROW(
      run_grade_ekf("x", t, f, {}, vehicle::VehicleParams{}),
      std::invalid_argument);
  // Empty series produce an empty track.
  const auto track = run_grade_ekf("x", std::vector<double>{},
                                   std::vector<double>{}, {},
                                   vehicle::VehicleParams{});
  EXPECT_TRUE(track.t.empty());
}

TEST(RunGradeEkf, DecimationAndOdometry) {
  const auto d = constant_grade_drive(0.0, 20.0, 0.02, 0.1, 6);
  GradeEkfConfig cfg;
  cfg.record_decimation = 10;
  const auto track = run_grade_ekf("test", d.t, d.f, d.meas,
                                   vehicle::VehicleParams{}, cfg);
  EXPECT_NEAR(static_cast<double>(track.t.size()),
              static_cast<double>(d.t.size()) / 10.0, 2.0);
  // Odometry approximates the integral of the true speed profile
  // v(t) = 10 + int 0.5 sin(0.4 tau) dtau = 10 + 1.25 (1 - cos 0.4 t).
  const double expected_dist =
      10.0 * 20.0 + 1.25 * (20.0 - std::sin(0.4 * 20.0) / 0.4);
  EXPECT_NEAR(track.s.back(), expected_dist, 15.0);
  // Odometry is nondecreasing.
  for (std::size_t i = 1; i < track.s.size(); ++i) {
    EXPECT_GE(track.s[i], track.s[i - 1]);
  }
}

TEST(GradeEkf, NisIsStatisticallyConsistent) {
  // Filter health check: with matched noise models, the normalized
  // innovation squared averages ~1 (one measurement dof).
  const auto d = constant_grade_drive(deg2rad(2.0), 120.0, 0.05, 0.2, 77);
  GradeEkfConfig cfg;
  cfg.use_paper_drift_term = false;
  cfg.gate_nis = 0.0;  // gating would truncate the statistic
  GradeEkf ekf(vehicle::VehicleParams{}, cfg, d.meas.front().v, 0.0);
  // Re-run manually to collect NIS via the raw filter interface.
  std::size_t m_idx = 0;
  double nis_sum = 0.0;
  std::size_t nis_n = 0;
  math::ExtendedKalmanFilter raw(
      math::Vec{d.meas.front().v, 0.0},
      math::Mat{{cfg.initial_speed_var, 0.0}, {0.0, cfg.initial_grade_var}});
  const double g = 9.80665;
  for (std::size_t i = 1; i < d.t.size(); ++i) {
    const double dt = d.t[i] - d.t[i - 1];
    const double f_hat = d.f[i];
    math::ProcessModel model;
    model.f = [=](const math::Vec& x, const math::Vec&) {
      return math::Vec{x[0] + (f_hat - g * std::sin(x[1])) * dt, x[1]};
    };
    model.jacobian = [=](const math::Vec& x, const math::Vec&) {
      math::Mat j = math::Mat::identity(2);
      j(0, 1) = -g * std::cos(x[1]) * dt;
      return j;
    };
    const double qv = cfg.accel_sigma * cfg.accel_sigma * dt * dt;
    model.q = math::Mat{{qv, 0.0}, {0.0, cfg.grade_process_psd * dt}};
    raw.predict(model, math::Vec{});
    while (m_idx < d.meas.size() && d.meas[m_idx].t <= d.t[i]) {
      math::MeasurementModel mm;
      mm.h = [](const math::Vec& x) { return math::Vec{x[0]}; };
      mm.jacobian = [](const math::Vec&) { return math::Mat{{1.0, 0.0}}; };
      mm.r = math::Mat{{d.meas[m_idx].variance}};
      const auto res = raw.update(mm, math::Vec{d.meas[m_idx].v});
      if (d.t[i] > 20.0) {  // after convergence
        nis_sum += res.nis;
        ++nis_n;
      }
      ++m_idx;
    }
  }
  ASSERT_GT(nis_n, 200u);
  EXPECT_NEAR(nis_sum / static_cast<double>(nis_n), 1.0, 0.35);
}

TEST(GradeRts, Validation) {
  EXPECT_THROW(run_grade_rts("x", std::vector<double>{0.0, 1.0},
                             std::vector<double>{0.0}, {},
                             vehicle::VehicleParams{}),
               std::invalid_argument);
  EXPECT_THROW(run_grade_rts("x", std::vector<double>{0.0, 1.0},
                             std::vector<double>{0.0, 0.0}, {},
                             vehicle::VehicleParams{}, {}, 0.0),
               std::invalid_argument);
  const auto empty =
      run_grade_rts("x", std::vector<double>{}, std::vector<double>{}, {},
                    vehicle::VehicleParams{});
  EXPECT_TRUE(empty.t.empty());
}

TEST(GradeRts, TighterThanCausalOnConstantGrade) {
  const double grade = deg2rad(3.0);
  const auto d = constant_grade_drive(grade, 90.0, 0.05, 0.2, 31);
  GradeEkfConfig cfg = no_drift_cfg();
  const auto causal = run_grade_ekf("ekf", d.t, d.f, d.meas,
                                    vehicle::VehicleParams{}, cfg);
  const auto smooth = run_grade_rts("rts", d.t, d.f, d.meas,
                                    vehicle::VehicleParams{}, cfg);
  // RMS error of the smoothed track must undercut the causal filter's.
  auto rms_err = [&](const GradeTrack& tr) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < tr.t.size(); ++i) {
      if (tr.t[i] < 15.0) continue;
      acc += (tr.grade[i] - grade) * (tr.grade[i] - grade);
      ++n;
    }
    return std::sqrt(acc / static_cast<double>(n));
  };
  EXPECT_LT(rms_err(smooth), 0.8 * rms_err(causal));
  // Smoothed variance reported below the filtered variance mid-drive.
  EXPECT_LT(smooth.grade_var[smooth.size() / 2],
            causal.grade_var[causal.size() / 2] * 1.01);
}

TEST(GradeRts, HalvesStepTransitionLag) {
  // Grade step at t=40 (as in GradeEkf.TracksGradeStep): compare the
  // error right after the step.
  SyntheticDrive d;
  math::Rng rng(32);
  const double dt = 0.02;
  double v = 12.0;
  double next_meas = 0.0;
  for (double t = 0.0; t <= 80.0; t += dt) {
    const double grade = t < 40.0 ? 0.0 : deg2rad(3.0);
    const double a = 0.4 * std::sin(0.3 * t);
    d.t.push_back(t);
    d.f.push_back(a + kG * std::sin(grade) + rng.gaussian(0.0, 0.05));
    if (t >= next_meas) {
      next_meas += 0.1;
      d.meas.push_back(
          VelocityMeasurement{t, v + rng.gaussian(0.0, 0.2), 0.04});
    }
    v += a * dt;
  }
  const auto causal = run_grade_ekf("ekf", d.t, d.f, d.meas,
                                    vehicle::VehicleParams{});
  const auto smooth = run_grade_rts("rts", d.t, d.f, d.meas,
                                    vehicle::VehicleParams{});
  auto window_err = [&](const GradeTrack& tr) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < tr.t.size(); ++i) {
      if (tr.t[i] < 38.0 || tr.t[i] > 46.0) continue;
      const double truth = tr.t[i] < 40.0 ? 0.0 : deg2rad(3.0);
      acc += std::abs(tr.grade[i] - truth);
      ++n;
    }
    return acc / static_cast<double>(n);
  };
  EXPECT_LT(window_err(smooth), 0.6 * window_err(causal));
}

// Parameterized: recovery works across the paper's grade range.
class GradeRecovery : public ::testing::TestWithParam<double> {};

TEST_P(GradeRecovery, ConstantGrade) {
  const double grade = deg2rad(GetParam());
  const auto d = constant_grade_drive(grade, 60.0, 0.05, 0.2,
                                      42 + static_cast<int>(GetParam()));
  const auto track = run_grade_ekf("test", d.t, d.f, d.meas,
                                   vehicle::VehicleParams{}, no_drift_cfg());
  double tail = 0.0;
  std::size_t n_tail = 0;
  for (std::size_t i = track.t.size() * 3 / 4; i < track.t.size(); ++i) {
    tail += track.grade[i];
    ++n_tail;
  }
  tail /= static_cast<double>(n_tail);
  EXPECT_NEAR(tail, grade, deg2rad(0.4));
}

INSTANTIATE_TEST_SUITE_P(Grades, GradeRecovery,
                         ::testing::Values(-8.0, -5.0, -2.0, -0.5, 0.0, 0.5,
                                           2.0, 5.0, 8.0));

// ---- bit-exactness vs. the generic EKF --------------------------------
// GradeEkf is a hand-unrolled 2-state specialization (zero allocations per
// step for the online hot path). This test drives it and the generic
// math::ExtendedKalmanFilter — with the exact process/measurement model
// the pre-specialization implementation used — through a long randomized
// predict/update sequence and requires every state and covariance entry
// to match bit-for-bit.

/// The grade model on top of the generic EKF, expression-for-expression
/// the previous GradeEkf implementation.
class GenericGradeEkf {
 public:
  GenericGradeEkf(const vehicle::VehicleParams& params,
                  const GradeEkfConfig& cfg, double initial_speed,
                  double initial_grade)
      : params_(params),
        cfg_(cfg),
        ekf_(math::Vec{initial_speed, initial_grade},
             math::Mat{{cfg.initial_speed_var, 0.0},
                       {0.0, cfg.initial_grade_var}}) {}

  void predict(double specific_force, double dt) {
    if (dt <= 0.0) return;
    const double g = params_.gravity;
    const double c = 2.0 * params_.drag_k() / params_.mass_kg;
    const bool drift = cfg_.use_paper_drift_term;
    constexpr double kMaxGradeRad = 0.35;

    math::ProcessModel model;
    model.f = [=](const math::Vec& x, const math::Vec& u) {
      const double v = x[0];
      const double theta = x[1];
      const double f_hat = u[0];
      double v_next = v + (f_hat - g * std::sin(theta)) * dt;
      v_next = std::max(0.0, v_next);
      double theta_next = theta;
      if (drift) {
        theta_next += c * v * f_hat * dt / (g * std::cos(theta));
      }
      theta_next = std::clamp(theta_next, -kMaxGradeRad, kMaxGradeRad);
      return math::Vec{v_next, theta_next};
    };
    model.jacobian = [=](const math::Vec& x, const math::Vec& u) {
      const double v = x[0];
      const double theta = x[1];
      const double f_hat = u[0];
      const double cth = std::cos(theta);
      math::Mat f_jac = math::Mat::identity(2);
      f_jac(0, 1) = -g * cth * dt;
      if (drift) {
        f_jac(1, 0) = c * f_hat * dt / (g * cth);
        f_jac(1, 1) = 1.0 + c * v * f_hat * dt * std::sin(theta) /
                                (g * cth * cth);
      }
      return f_jac;
    };
    const double qv = cfg_.accel_sigma * cfg_.accel_sigma * dt * dt;
    model.q = math::Mat{{qv, 0.0}, {0.0, cfg_.grade_process_psd * dt}};
    ekf_.predict(model, math::Vec{specific_force});
  }

  bool update_velocity(double v_meas, double variance) {
    math::MeasurementModel model;
    model.h = [](const math::Vec& x) { return math::Vec{x[0]}; };
    model.jacobian = [](const math::Vec&) { return math::Mat{{1.0, 0.0}}; };
    model.r = math::Mat{{variance}};
    return ekf_.update(model, math::Vec{v_meas}, cfg_.gate_nis).accepted;
  }

  double speed() const { return ekf_.state()[0]; }
  double grade() const { return ekf_.state()[1]; }
  double p00() const { return ekf_.covariance()(0, 0); }
  double p01() const { return ekf_.covariance()(0, 1); }
  double p10() const { return ekf_.covariance()(1, 0); }
  double p11() const { return ekf_.covariance()(1, 1); }

 private:
  vehicle::VehicleParams params_;
  GradeEkfConfig cfg_;
  math::ExtendedKalmanFilter ekf_;
};

TEST(GradeEkf, MatchesGenericEkfBitExact) {
  for (const bool drift : {true, false}) {
    GradeEkfConfig cfg;
    cfg.use_paper_drift_term = drift;
    const vehicle::VehicleParams params{};

    GradeEkf fast(params, cfg, 12.0, 0.01);
    GenericGradeEkf slow(params, cfg, 12.0, 0.01);

    math::Rng rng(drift ? 77 : 78);
    for (int step = 0; step < 4000; ++step) {
      const double dt = 0.02;
      const double f = rng.gaussian(0.3, 1.5);
      fast.predict(f, dt);
      slow.predict(f, dt);
      if (step % 7 == 0) {
        // Occasional far-out measurement exercises the NIS gate branch.
        const double v = step % 35 == 0 ? rng.gaussian(60.0, 5.0)
                                        : rng.gaussian(12.0, 0.5);
        const double var = 0.04 + rng.uniform(0.0, 0.2);
        const bool a_fast = fast.update_velocity(v, var);
        const bool a_slow = slow.update_velocity(v, var);
        ASSERT_EQ(a_fast, a_slow) << "gate disagreement at step " << step;
      }
      ASSERT_EQ(fast.speed(), slow.speed()) << "step " << step;
      ASSERT_EQ(fast.grade(), slow.grade()) << "step " << step;
      ASSERT_EQ(fast.speed_variance(), slow.p00()) << "step " << step;
      ASSERT_EQ(fast.grade_variance(), slow.p11()) << "step " << step;
      // The generic filter symmetrizes P, so its off-diagonals agree with
      // the single p01 the specialization stores.
      ASSERT_EQ(slow.p01(), slow.p10()) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace rge::core
