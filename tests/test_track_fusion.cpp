// Unit tests for Eq. 6 convex-combination track fusion.
#include "core/track_fusion.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/rng.hpp"
#include "math/stats.hpp"

namespace rge::core {
namespace {

GradeTrack make_track(const std::string& name, std::size_t n, double dt,
                      double grade, double var) {
  GradeTrack tr;
  tr.source = name;
  for (std::size_t i = 0; i < n; ++i) {
    tr.t.push_back(static_cast<double>(i) * dt);
    tr.grade.push_back(grade);
    tr.grade_var.push_back(var);
    tr.speed.push_back(10.0);
    tr.s.push_back(static_cast<double>(i) * dt * 10.0);
  }
  return tr;
}

TEST(ConvexCombine, HandChecked) {
  // theta = (2/1 + 6/2) / (1/1 + 1/2) = 5 / 1.5.
  const auto [theta, var] = convex_combine(std::vector<double>{2.0, 6.0},
                                           std::vector<double>{1.0, 2.0});
  EXPECT_NEAR(theta, 5.0 / 1.5, 1e-12);
  EXPECT_NEAR(var, 1.0 / 1.5, 1e-12);
}

TEST(ConvexCombine, EqualVariancesIsMean) {
  const auto [theta, var] = convex_combine(
      std::vector<double>{1.0, 2.0, 3.0}, std::vector<double>{0.5, 0.5, 0.5});
  EXPECT_NEAR(theta, 2.0, 1e-12);
  EXPECT_NEAR(var, 0.5 / 3.0, 1e-12);
}

TEST(ConvexCombine, LowVarianceDominates) {
  const auto [theta, var] = convex_combine(
      std::vector<double>{0.0, 1.0}, std::vector<double>{1e-6, 1.0});
  EXPECT_NEAR(theta, 0.0, 1e-3);
  (void)var;
}

TEST(ConvexCombine, VarianceFloorApplies) {
  // A zero variance would otherwise produce an infinite weight.
  const auto [theta, var] = convex_combine(std::vector<double>{1.0, 3.0},
                                           std::vector<double>{0.0, 0.0},
                                           /*min_variance=*/0.5);
  EXPECT_NEAR(theta, 2.0, 1e-12);
  EXPECT_NEAR(var, 0.25, 1e-12);
}

TEST(ConvexCombine, Validation) {
  EXPECT_THROW(convex_combine(std::vector<double>{},
                              std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(convex_combine(std::vector<double>{1.0},
                              std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(FuseTime, SingleTrackPassThrough) {
  const auto tr = make_track("a", 10, 0.1, 0.05, 0.01);
  const GradeTrack fused = fuse_tracks_time({tr});
  EXPECT_EQ(fused.source, "fused");
  ASSERT_EQ(fused.size(), tr.size());
  EXPECT_DOUBLE_EQ(fused.grade[5], 0.05);
}

TEST(FuseTime, Validation) {
  EXPECT_THROW(fuse_tracks_time({}), std::invalid_argument);
  const auto tr = make_track("a", 5, 0.1, 0.0, 0.01);
  EXPECT_THROW(fuse_tracks_time({tr}, 3), std::invalid_argument);
}

TEST(FuseTime, WeightsByVariance) {
  const auto good = make_track("good", 20, 0.1, 0.01, 1e-4);
  const auto bad = make_track("bad", 20, 0.1, 0.09, 1e-2);
  const GradeTrack fused = fuse_tracks_time({good, bad});
  // Fused value should sit near the good track.
  EXPECT_NEAR(fused.grade[10], (0.01 / 1e-4 + 0.09 / 1e-2) /
                                   (1.0 / 1e-4 + 1.0 / 1e-2),
              1e-12);
  EXPECT_LT(std::abs(fused.grade[10] - 0.01),
            std::abs(fused.grade[10] - 0.09));
  // Fused variance below every input variance.
  EXPECT_LT(fused.grade_var[10], 1e-4);
}

TEST(FuseTime, ReducesNoiseOfIndependentTracks) {
  math::Rng rng(3);
  const double truth = 0.04;
  std::vector<GradeTrack> tracks;
  for (int k = 0; k < 4; ++k) {
    GradeTrack tr = make_track("t" + std::to_string(k), 500, 0.1, 0.0, 0.01);
    for (auto& g : tr.grade) g = truth + rng.gaussian(0.0, 0.1);
    tracks.push_back(std::move(tr));
  }
  const GradeTrack fused = fuse_tracks_time(tracks);
  std::vector<double> truth_series(fused.size(), truth);
  double err_single = math::rmse(tracks[0].grade, truth_series);
  double err_fused = math::rmse(fused.grade, truth_series);
  // Four independent equal-quality tracks: error halves (1/sqrt(4)).
  EXPECT_LT(err_fused, 0.65 * err_single);
}

TEST(FuseTime, InterpolatesMisalignedTimelines) {
  // Second track sampled at half the rate and offset.
  const auto a = make_track("a", 40, 0.1, 0.02, 1e-3);
  GradeTrack b;
  b.source = "b";
  for (int i = 0; i < 20; ++i) {
    b.t.push_back(0.05 + 0.2 * i);
    b.grade.push_back(0.06);
    b.grade_var.push_back(1e-3);
    b.speed.push_back(10.0);
    b.s.push_back(0.5 + 2.0 * i);
  }
  const GradeTrack fused = fuse_tracks_time({a, b});
  ASSERT_EQ(fused.size(), a.size());
  // Equal variance -> midpoint.
  EXPECT_NEAR(fused.grade[20], 0.04, 1e-9);
}

TEST(FuseDistance, OverlappingRange) {
  auto a = make_track("a", 100, 0.1, 0.03, 1e-3);  // s: 0..99
  auto b = make_track("b", 100, 0.1, 0.05, 1e-3);
  for (auto& s : b.s) s += 20.0;  // s: 20..119
  FusionConfig cfg;
  cfg.distance_step_m = 2.0;
  const GradeTrack fused = fuse_tracks_distance({a, b}, cfg);
  ASSERT_FALSE(fused.s.empty());
  EXPECT_GE(fused.s.front(), 20.0);
  EXPECT_LE(fused.s.back(), 99.0 + 1e-9);
  EXPECT_NEAR(fused.grade.front(), 0.04, 1e-9);
}

TEST(FuseDistance, NoOverlapThrows) {
  auto a = make_track("a", 10, 0.1, 0.0, 1e-3);  // s: 0..9
  auto b = make_track("b", 10, 0.1, 0.0, 1e-3);
  for (auto& s : b.s) s += 100.0;  // s: 100..109
  EXPECT_THROW(fuse_tracks_distance({a, b}), std::invalid_argument);
  EXPECT_THROW(fuse_tracks_distance({}), std::invalid_argument);
}

TEST(FuseDistance, NoOverlapThrowMessageNamesTheProblem) {
  auto a = make_track("a", 10, 0.1, 0.0, 1e-3);  // s: 0..9
  auto b = make_track("b", 10, 0.1, 0.0, 1e-3);
  for (auto& s : b.s) s += 100.0;  // s: 100..109
  try {
    fuse_tracks_distance({a, b});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("do not overlap"),
              std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(FuseDistance, BadStepThrows) {
  const auto a = make_track("a", 10, 0.1, 0.0, 1e-3);
  FusionConfig cfg;
  cfg.distance_step_m = 0.0;  // would loop forever on the old grid
  EXPECT_THROW(fuse_tracks_distance({a}, cfg), std::invalid_argument);
  cfg.distance_step_m = -1.0;
  EXPECT_THROW(fuse_tracks_distance({a}, cfg), std::invalid_argument);
}

TEST(FuseDistance, LastSampleLandsExactlyOnOverlapEnd) {
  // Regression: the old `for (s = lo; s <= hi; s += step)` loop never
  // sampled hi unless the span was an exact step multiple (and fp drift
  // broke even that). The overlap here is [20, 99] with step 2.5 — not a
  // multiple — and the final sample must still be exactly 99.
  auto a = make_track("a", 100, 0.1, 0.03, 1e-3);  // s: 0..99
  auto b = make_track("b", 100, 0.1, 0.05, 1e-3);
  for (auto& s : b.s) s += 20.0;  // s: 20..119 -> overlap [20, 99]
  FusionConfig cfg;
  cfg.distance_step_m = 2.5;
  const GradeTrack fused = fuse_tracks_distance({a, b}, cfg);
  EXPECT_DOUBLE_EQ(fused.s.front(), 20.0);
  EXPECT_DOUBLE_EQ(fused.s.back(), 99.0);

  // Exact-multiple span: overlap length 79 is not a multiple of 2.5, but
  // with step 1.0 it is; the endpoint must be included exactly once.
  cfg.distance_step_m = 1.0;
  const GradeTrack fused2 = fuse_tracks_distance({a, b}, cfg);
  EXPECT_DOUBLE_EQ(fused2.s.back(), 99.0);
  ASSERT_GE(fused2.s.size(), 2u);
  EXPECT_LT(fused2.s[fused2.s.size() - 2], 99.0);
  EXPECT_EQ(fused2.s.size(), 80u);  // 20..99 inclusive at 1 m
}

TEST(FuseDistance, GridIsIntegerIndexedWithoutDrift) {
  // Regression: accumulating `s += step` drifts over long routes (10 km at
  // 0.1 m is 100k additions). The integer-indexed grid must give
  // s[i] == lo + i*step bit-exactly, with the final sample pinned to hi.
  GradeTrack a;
  a.source = "long-route";
  for (std::size_t i = 0; i <= 10000; ++i) {
    a.t.push_back(static_cast<double>(i) * 0.1);
    a.grade.push_back(0.02);
    a.grade_var.push_back(1e-3);
    a.speed.push_back(10.0);
    a.s.push_back(static_cast<double>(i));  // exact integer odometry, 10 km
  }
  FusionConfig cfg;
  cfg.distance_step_m = 0.1;
  const GradeTrack fused = fuse_tracks_distance({a}, cfg);
  ASSERT_EQ(fused.s.size(), 100001u);
  for (std::size_t i : {0u, 1u, 33333u, 99999u}) {
    EXPECT_EQ(fused.s[i], static_cast<double>(i) * 0.1);
  }
  EXPECT_EQ(fused.s.back(), 10000.0);  // exactly hi, bit for bit
}

TEST(FuseDistance, SpeedAndTimeInterpolatedFromMembers) {
  // Regression: speed used to be a 0.0 placeholder and t an alias of s,
  // violating GradeTrack invariants for downstream consumers.
  auto a = make_track("a", 100, 0.1, 0.03, 1e-3);  // speed 10, t = i*0.1
  auto b = make_track("b", 100, 0.1, 0.05, 1e-3);
  for (auto& v : b.speed) v = 14.0;
  FusionConfig cfg;
  cfg.distance_step_m = 5.0;
  const GradeTrack fused = fuse_tracks_distance({a, b}, cfg);
  EXPECT_NO_THROW(fused.validate());
  for (std::size_t i = 0; i < fused.size(); ++i) {
    // Equal variances -> plain mean of member speeds.
    EXPECT_NEAR(fused.speed[i], 12.0, 1e-9) << "sample " << i;
    // t is the mean traversal time, not an alias of s.
    EXPECT_NEAR(fused.t[i], fused.s[i] / 10.0, 1e-9) << "sample " << i;
  }
}

TEST(FuseTime, SingleTrackRenamePreservesPayload) {
  const auto tr = make_track("solo", 12, 0.1, 0.07, 5e-3);
  const GradeTrack fused = fuse_tracks_time({tr});
  EXPECT_EQ(fused.source, "fused");
  EXPECT_EQ(fused.t, tr.t);
  EXPECT_EQ(fused.s, tr.s);
  EXPECT_EQ(fused.speed, tr.speed);
  ASSERT_EQ(fused.grade.size(), tr.grade.size());
  for (std::size_t i = 0; i < tr.size(); ++i) {
    EXPECT_DOUBLE_EQ(fused.grade[i], tr.grade[i]);
  }
  EXPECT_NO_THROW(fused.validate());
}

TEST(GradeTrackValidate, AcceptsWellFormedAndRejectsBrokenTracks) {
  GradeTrack good = make_track("good", 10, 0.1, 0.02, 1e-3);
  EXPECT_NO_THROW(good.validate());

  GradeTrack short_speed = good;
  short_speed.speed.pop_back();
  EXPECT_THROW(short_speed.validate(), std::logic_error);

  GradeTrack nan_grade = good;
  nan_grade.grade[3] = std::nan("");
  EXPECT_THROW(nan_grade.validate(), std::logic_error);

  GradeTrack neg_var = good;
  neg_var.grade_var[2] = -1e-9;
  EXPECT_THROW(neg_var.validate(), std::logic_error);

  GradeTrack backwards_t = good;
  backwards_t.t[5] = backwards_t.t[4] - 1.0;
  EXPECT_THROW(backwards_t.validate(), std::logic_error);

  GradeTrack backwards_s = good;
  backwards_s.s[5] = backwards_s.s[4] - 1.0;
  EXPECT_THROW(backwards_s.validate(), std::logic_error);
}

TEST(FuseDistance, MultiVehicleCloudScenario) {
  // Three "vehicles" with different per-trip biases; cloud fusion averages
  // them down.
  math::Rng rng(9);
  const double truth = 0.02;
  std::vector<GradeTrack> tracks;
  for (int k = 0; k < 3; ++k) {
    GradeTrack tr = make_track("veh" + std::to_string(k), 200, 0.1, 0.0,
                               4e-4);
    const double bias = rng.gaussian(0.0, 0.01);
    for (auto& g : tr.grade) g = truth + bias + rng.gaussian(0.0, 0.02);
    tracks.push_back(std::move(tr));
  }
  const GradeTrack fused = fuse_tracks_distance(tracks);
  std::vector<double> truth_series(fused.grade.size(), truth);
  EXPECT_LT(math::mae(fused.grade, truth_series),
            math::mae(tracks[0].grade,
                      std::vector<double>(tracks[0].grade.size(), truth)));
}

// Parameterized: fused variance is 1/N of per-track variance for equal
// tracks.
class FusionVariance : public ::testing::TestWithParam<int> {};

TEST_P(FusionVariance, ScalesInversely) {
  const int n = GetParam();
  std::vector<GradeTrack> tracks;
  for (int k = 0; k < n; ++k) {
    tracks.push_back(make_track("t" + std::to_string(k), 10, 0.1, 0.01,
                                2e-3));
  }
  const GradeTrack fused = fuse_tracks_time(tracks);
  EXPECT_NEAR(fused.grade_var[5], 2e-3 / n, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Counts, FusionVariance,
                         ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace rge::core
