// Unit tests for the frozen CSR routing graph and the ALT query layer:
// cost-table exactness vs the pluggable cost functions, bit-identical
// cost/path parity between plain Dijkstra, ALT, and the legacy
// RouteGraph::shortest_path, deterministic tie-breaking, potential
// admissibility, and thread-safety of concurrent queries over one shared
// graph (the CsrGraphConcurrency suite runs under the tsan-runtime preset).
#include "planning/csr_graph.hpp"

#include <cmath>
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "emissions/emissions.hpp"
#include "math/angles.hpp"
#include "math/rng.hpp"
#include "planning/city_gen.hpp"
#include "runtime/thread_pool.hpp"

namespace rge::planning {
namespace {

using math::deg2rad;

Edge make_edge(std::size_t from, std::size_t to, double length,
               double grade = 0.0) {
  Edge e;
  e.from = from;
  e.to = to;
  e.length_m = length;
  const auto samples =
      static_cast<std::size_t>(std::max(1.0, std::round(length / 25.0)));
  e.grade_step_m = length / static_cast<double>(samples);
  e.grades.assign(samples, grade);
  return e;
}

constexpr Metric kAllMetrics[] = {Metric::kDistance, Metric::kTime,
                                  Metric::kFuel, Metric::kCo2};

RouteGraph::CostFn legacy_cost(Metric m, const CostModel& model) {
  return [m, model](const Edge& e) {
    const double speed =
        e.speed_mps > 0.0 ? e.speed_mps : model.default_speed_mps;
    switch (m) {
      case Metric::kDistance: return edge_cost_distance(e);
      case Metric::kTime: return edge_cost_time(e, speed);
      case Metric::kFuel: return edge_cost_fuel(e, speed, model.vsp);
      case Metric::kCo2:
        return edge_cost_fuel(e, speed, model.vsp) * model.co2_g_per_gal;
    }
    return 0.0;
  };
}

void expect_identical(const RouteGraph::Route& a, const RouteGraph::Route& b,
                      const char* what) {
  ASSERT_EQ(a.found, b.found) << what;
  if (!a.found) return;
  // Bit-identical cost, identical (not merely equal-cost) path.
  EXPECT_EQ(a.cost, b.cost) << what;
  EXPECT_EQ(a.nodes, b.nodes) << what;
  EXPECT_EQ(a.edges, b.edges) << what;
  EXPECT_DOUBLE_EQ(a.length_m, b.length_m) << what;
}

TEST(CsrGraph, CostTablesMatchCostFunctionsBitExactly) {
  const RouteGraph g = make_grid_city(6, 7, 200.0, 11);
  const CostModel model;
  const CsrGraph csr(g, model);
  ASSERT_EQ(csr.node_count(), g.node_count());
  ASSERT_EQ(csr.edge_count(), g.edge_count());
  for (std::size_t ei = 0; ei < g.edge_count(); ++ei) {
    const Edge& e = g.edge(ei);
    EXPECT_EQ(csr.edge_cost(Metric::kDistance, ei), edge_cost_distance(e));
    EXPECT_EQ(csr.edge_cost(Metric::kTime, ei),
              edge_cost_time(e, model.default_speed_mps));
    EXPECT_EQ(csr.edge_cost(Metric::kFuel, ei),
              edge_cost_fuel(e, model.default_speed_mps, model.vsp));
    EXPECT_EQ(csr.edge_cost(Metric::kCo2, ei),
              edge_cost_fuel(e, model.default_speed_mps, model.vsp) *
                  model.co2_g_per_gal);
  }
  EXPECT_THROW(csr.edge_cost(Metric::kFuel, g.edge_count()),
               std::invalid_argument);
}

TEST(CsrGraph, PerEdgeSpeedsFeedTimeAndFuelTables) {
  OsmCityConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  const RouteGraph g = make_osm_city(cfg);
  const CostModel model;
  const CsrGraph csr(g, model);
  for (std::size_t ei = 0; ei < g.edge_count(); ei += 17) {
    const Edge& e = g.edge(ei);
    ASSERT_GT(e.speed_mps, 0.0);
    EXPECT_EQ(csr.edge_cost(Metric::kTime, ei),
              edge_cost_time(e, e.speed_mps));
    EXPECT_EQ(csr.edge_cost(Metric::kFuel, ei),
              edge_cost_fuel(e, e.speed_mps, model.vsp));
  }
}

TEST(CsrGraph, MatchesLegacyShortestPathOnGridCity) {
  const RouteGraph g = make_grid_city(7, 7, 240.0, 3);
  const CostModel model;
  const CsrGraph csr(g, model);
  QueryContext ctx;
  math::Rng rng(77);
  for (int it = 0; it < 40; ++it) {
    const auto from = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.node_count()) - 1));
    const auto to = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.node_count()) - 1));
    for (const Metric m : kAllMetrics) {
      const auto legacy = g.shortest_path(from, to, legacy_cost(m, model));
      const auto dij = csr.route(from, to, m, ctx, /*use_alt=*/false);
      const auto alt = csr.route(from, to, m, ctx, /*use_alt=*/true);
      expect_identical(legacy, dij, metric_name(m));
      expect_identical(dij, alt, metric_name(m));
    }
  }
}

TEST(CsrGraph, DeterministicTieBreakPrefersLowerEdgeIndex) {
  // Diamond: two bitwise-equal-cost paths 0-1-3 (edges 0,2) and 0-2-3
  // (edges 1,3). The canonical route must take the lower-indexed edges.
  RouteGraph g(4);
  g.add_edge(make_edge(0, 1, 100.0));  // e0
  g.add_edge(make_edge(0, 2, 100.0));  // e1
  g.add_edge(make_edge(1, 3, 100.0));  // e2
  g.add_edge(make_edge(2, 3, 100.0));  // e3
  const CsrGraph csr(g);
  QueryContext ctx;
  for (const Metric m : kAllMetrics) {
    const auto legacy = g.shortest_path(0, 3, legacy_cost(m, CostModel{}));
    const auto dij = csr.route(0, 3, m, ctx, false);
    const auto alt = csr.route(0, 3, m, ctx, true);
    ASSERT_TRUE(alt.found);
    EXPECT_EQ(alt.edges, (std::vector<std::size_t>{0, 2})) << metric_name(m);
    expect_identical(legacy, dij, metric_name(m));
    expect_identical(dij, alt, metric_name(m));
  }
}

TEST(CsrGraph, ManyEqualPathsStillDeterministic) {
  // A flat equal-block grid is a worst case: every monotone staircase
  // between opposite corners has bitwise-identical distance cost.
  const RouteGraph g = make_grid_city(5, 5, 300.0, 1);
  const CsrGraph csr(g);
  QueryContext ctx;
  const auto legacy =
      g.shortest_path(2, 22, legacy_cost(Metric::kDistance, CostModel{}));
  const auto dij = csr.route(2, 22, Metric::kDistance, ctx, false);
  const auto alt = csr.route(2, 22, Metric::kDistance, ctx, true);
  expect_identical(legacy, dij, "distance");
  expect_identical(dij, alt, "distance");
}

TEST(CsrGraph, PotentialsAreAdmissibleAndZeroAtTarget) {
  OsmCityConfig cfg;
  cfg.rows = 10;
  cfg.cols = 10;
  const RouteGraph g = make_osm_city(cfg);
  const CsrGraph csr(g);
  QueryContext ctx;
  math::Rng rng(5);
  for (int it = 0; it < 25; ++it) {
    const auto u = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.node_count()) - 1));
    const auto t = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.node_count()) - 1));
    for (const Metric m : kAllMetrics) {
      EXPECT_EQ(csr.potential(m, t, t), 0.0);
      const auto r = csr.route(u, t, m, ctx, false);
      ASSERT_TRUE(r.found);
      // Admissible to within the ulp-slack the query bound absorbs.
      EXPECT_LE(csr.potential(m, u, t), r.cost * (1.0 + 1e-12))
          << metric_name(m);
    }
  }
}

TEST(CsrGraph, AltPrunesTheSearchOnLongFuelQueries) {
  OsmCityConfig cfg;
  cfg.rows = 20;
  cfg.cols = 20;
  const RouteGraph g = make_osm_city(cfg);
  const CsrGraph csr(g);
  QueryContext ctx;
  const std::size_t from = 0;
  const std::size_t to = g.node_count() - 1;
  (void)csr.route(from, to, Metric::kFuel, ctx, false);
  const std::size_t settled_dij = ctx.stats().settled;
  (void)csr.route(from, to, Metric::kFuel, ctx, true);
  const std::size_t settled_alt = ctx.stats().settled;
  EXPECT_LT(settled_alt, settled_dij / 2)
      << "ALT should settle far fewer nodes than Dijkstra";
}

TEST(CsrGraph, UnreachableAndTrivialQueries) {
  RouteGraph g(3);
  g.add_edge(make_edge(0, 1, 100.0));
  const CsrGraph csr(g);
  QueryContext ctx;
  for (const bool use_alt : {false, true}) {
    const auto none = csr.route(0, 2, Metric::kDistance, ctx, use_alt);
    EXPECT_FALSE(none.found);
    const auto self = csr.route(1, 1, Metric::kFuel, ctx, use_alt);
    ASSERT_TRUE(self.found);
    EXPECT_EQ(self.cost, 0.0);
    EXPECT_TRUE(self.edges.empty());
    EXPECT_EQ(self.nodes, (std::vector<std::size_t>{1}));
  }
  EXPECT_THROW(csr.route(0, 9, Metric::kDistance, ctx), std::invalid_argument);
}

TEST(CsrGraph, ZeroLandmarksDegradesToDijkstra) {
  const RouteGraph g = make_grid_city(5, 5, 200.0, 8);
  AltConfig alt;
  alt.landmarks = 0;
  const CsrGraph csr(g, CostModel{}, alt);
  EXPECT_EQ(csr.landmark_count(), 0u);
  QueryContext ctx;
  const auto r = csr.route(0, 24, Metric::kFuel, ctx, true);
  const auto legacy =
      g.shortest_path(0, 24, legacy_cost(Metric::kFuel, CostModel{}));
  expect_identical(legacy, r, "fuel");
}

TEST(CsrGraph, ContextReuseAcrossQueriesAndMetricsIsClean) {
  const RouteGraph g = make_grid_city(6, 6, 250.0, 2);
  const CsrGraph csr(g);
  QueryContext reused;
  math::Rng rng(9);
  for (int it = 0; it < 60; ++it) {
    const auto from = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.node_count()) - 1));
    const auto to = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.node_count()) - 1));
    const Metric m = kAllMetrics[it % 4];
    QueryContext fresh;
    expect_identical(csr.route(from, to, m, fresh, true),
                     csr.route(from, to, m, reused, true), "context reuse");
  }
}

TEST(CsrGraph, RejectsEmptyGraphAndReportsBuildStats) {
  EXPECT_THROW(CsrGraph(RouteGraph(0)), std::invalid_argument);
  const RouteGraph g = make_grid_city(4, 4, 200.0, 6);
  const CsrGraph csr(g);
  EXPECT_GE(csr.build_stats().cost_tables_ms, 0.0);
  EXPECT_GE(csr.build_stats().landmarks_ms, 0.0);
  EXPECT_EQ(csr.landmark_count(), 8u);
  for (const Metric m : kAllMetrics) {
    EXPECT_EQ(csr.landmarks(m).size(), csr.landmark_count());
  }
}

// ---- concurrent queries over one shared graph (tsan-runtime tier) ------

TEST(CsrGraphConcurrency, ParallelQueriesMatchSerial) {
  OsmCityConfig cfg;
  cfg.rows = 14;
  cfg.cols = 14;
  const RouteGraph g = make_osm_city(cfg);
  const CsrGraph csr(g);

  constexpr std::size_t kQueries = 256;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  math::Rng rng(123);
  for (std::size_t i = 0; i < kQueries; ++i) {
    pairs.emplace_back(
        static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(g.node_count()) - 1)),
        static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(g.node_count()) - 1)));
  }

  std::vector<RouteGraph::Route> serial(kQueries);
  {
    QueryContext ctx;
    for (std::size_t i = 0; i < kQueries; ++i) {
      serial[i] = csr.route(pairs[i].first, pairs[i].second,
                            kAllMetrics[i % 4], ctx, true);
    }
  }

  // One QueryContext per worker; the graph itself is shared read-only.
  runtime::ThreadPool pool(4);
  std::vector<RouteGraph::Route> parallel(kQueries);
  std::vector<QueryContext> contexts(4 + 1);
  std::atomic<std::size_t> next_ctx{0};
  thread_local QueryContext* tls_ctx = nullptr;
  runtime::parallel_for(pool, kQueries, [&](std::size_t i) {
    if (tls_ctx == nullptr) {
      tls_ctx = &contexts[next_ctx.fetch_add(1, std::memory_order_relaxed)];
    }
    parallel[i] = csr.route(pairs[i].first, pairs[i].second,
                            kAllMetrics[i % 4], *tls_ctx, true);
  });

  for (std::size_t i = 0; i < kQueries; ++i) {
    expect_identical(serial[i], parallel[i], "concurrent query");
  }
}

}  // namespace
}  // namespace rge::planning
