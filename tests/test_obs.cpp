// Unit tests for the observability layer: metrics registry (counters /
// gauges / histograms across threads), JSON snapshot, tracing spans, and
// the Chrome-trace export.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

#if RGE_OBS_ENABLED

namespace {

using rge::obs::Registry;

/// RAII: reset metrics/trace state and force a known enabled state, then
/// restore the defaults (everything off) so tests do not leak state.
struct ObsSandbox {
  ObsSandbox(bool metrics, bool tracing) {
    rge::obs::reset_all();
    rge::obs::set_enabled(metrics);
    rge::obs::set_tracing(tracing);
  }
  ~ObsSandbox() {
    rge::obs::set_enabled(false);
    rge::obs::set_tracing(false);
    rge::obs::reset_all();
  }
};

TEST(ObsMetrics, CounterAccumulatesAndResets) {
  ObsSandbox sandbox(true, false);
  for (int i = 0; i < 5; ++i) OBS_COUNT("test.counter_basic", 2);
  auto snap = Registry::global().snapshot();
  EXPECT_EQ(snap.counters.at("test.counter_basic"), 10);

  // reset zeroes the value but keeps the registration (the static handle
  // inside the macro stays valid).
  rge::obs::reset_all();
  OBS_COUNT("test.counter_basic", 3);
  snap = Registry::global().snapshot();
  EXPECT_EQ(snap.counters.at("test.counter_basic"), 3);
}

TEST(ObsMetrics, GaugeGoesUpAndDown) {
  ObsSandbox sandbox(true, false);
  OBS_GAUGE_ADD("test.gauge", 7);
  OBS_GAUGE_ADD("test.gauge", -3);
  const auto snap = Registry::global().snapshot();
  EXPECT_EQ(snap.gauges.at("test.gauge"), 4);
}

TEST(ObsMetrics, HistogramBucketsAndOverflow) {
  ObsSandbox sandbox(true, false);
  const std::vector<double> bounds = {1.0, 10.0, 100.0};
  rge::obs::Histogram h("test.histo", {bounds.data(), bounds.size()});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (inclusive upper bound)
  h.observe(5.0);    // bucket 1
  h.observe(99.0);   // bucket 2
  h.observe(1e6);    // overflow bucket 3
  const auto snap = Registry::global().snapshot();
  const auto& hs = snap.histograms.at("test.histo");
  ASSERT_EQ(hs.counts.size(), 4u);
  EXPECT_EQ(hs.counts[0], 2);
  EXPECT_EQ(hs.counts[1], 1);
  EXPECT_EQ(hs.counts[2], 1);
  EXPECT_EQ(hs.counts[3], 1);
  EXPECT_EQ(hs.count, 5);
  EXPECT_DOUBLE_EQ(hs.sum, 0.5 + 1.0 + 5.0 + 99.0 + 1e6);
}

TEST(ObsMetrics, ThreadShardsMergeOnScrape) {
  ObsSandbox sandbox(true, false);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) OBS_COUNT("test.mt_counter", 1);
    });
  }
  // Scrape while threads are live: the total must never exceed the final
  // value and the final scrape (after join → shard retirement) is exact.
  const auto mid = Registry::global().snapshot();
  if (mid.counters.count("test.mt_counter") != 0) {
    EXPECT_LE(mid.counters.at("test.mt_counter"),
              static_cast<std::int64_t>(kThreads) * kPerThread);
  }
  for (auto& th : threads) th.join();
  const auto snap = Registry::global().snapshot();
  EXPECT_EQ(snap.counters.at("test.mt_counter"),
            static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(ObsMetrics, DisabledRecordsNothing) {
  ObsSandbox sandbox(false, false);
  OBS_COUNT("test.disabled_counter", 1);
  OBS_GAUGE_ADD("test.disabled_gauge", 1);
  OBS_OBSERVE("test.disabled_histo", 1.0, rge::obs::latency_bounds_us());
  const auto snap = Registry::global().snapshot();
  EXPECT_EQ(snap.counters.count("test.disabled_counter"), 0u);
  EXPECT_EQ(snap.gauges.count("test.disabled_gauge"), 0u);
  EXPECT_EQ(snap.histograms.count("test.disabled_histo"), 0u);
}

TEST(ObsMetrics, JsonSnapshotIsWellFormedAndSorted) {
  ObsSandbox sandbox(true, false);
  OBS_COUNT("test.json_b", 2);
  OBS_COUNT("test.json_a", 1);
  OBS_OBSERVE("test.json_h", 3.0, rge::obs::latency_bounds_us());
  const std::string json = rge::obs::metrics_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_a\":1"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_b\":2"), std::string::npos);
  // Map iteration order => "test.json_a" serializes before "test.json_b".
  EXPECT_LT(json.find("\"test.json_a\""), json.find("\"test.json_b\""));
  EXPECT_NE(json.find("\"test.json_h\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
}

TEST(ObsMetrics, KindMismatchThrows) {
  ObsSandbox sandbox(true, false);
  Registry::global().register_counter("test.kind_clash");
  EXPECT_THROW(Registry::global().register_gauge("test.kind_clash"),
               std::logic_error);
}

TEST(ObsTrace, SpansNestAndExportChromeJson) {
  ObsSandbox sandbox(true, true);
  rge::obs::set_thread_name("test-main");
  {
    OBS_SPAN("outer");
    {
      OBS_SPAN("inner");
    }
  }
  const std::string json = rge::obs::chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Thread-name metadata event for the named thread.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("test-main"), std::string::npos);

  // Nesting: the inner complete-event must start no earlier and end no
  // later than the outer one. Pull ts/dur out of the serialized events.
  const auto event_window = [&](const std::string& name) {
    const std::size_t at = json.find("\"name\":\"" + name + "\"");
    EXPECT_NE(at, std::string::npos);
    const std::size_t ts_at = json.find("\"ts\":", at);
    const std::size_t dur_at = json.find("\"dur\":", at);
    const double ts = std::stod(json.substr(ts_at + 5));
    const double dur = std::stod(json.substr(dur_at + 6));
    return std::pair<double, double>(ts, ts + dur);
  };
  const auto [outer_t0, outer_t1] = event_window("outer");
  const auto [inner_t0, inner_t1] = event_window("inner");
  EXPECT_GE(inner_t0, outer_t0);
  EXPECT_LE(inner_t1, outer_t1);
}

TEST(ObsTrace, SpansFromPoolWorkersCarryTheirOwnTid) {
  ObsSandbox sandbox(true, true);
  std::thread worker([] {
    rge::obs::set_thread_name("test-worker");
    OBS_SPAN("worker_span");
  });
  worker.join();
  {
    OBS_SPAN_DYN(std::string("main_span"));
  }
  const std::string json = rge::obs::chrome_trace_json();
  EXPECT_NE(json.find("\"name\":\"worker_span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"main_span\""), std::string::npos);
  EXPECT_NE(json.find("test-worker"), std::string::npos);
}

TEST(ObsTrace, DisabledTracingRecordsNoSpans) {
  ObsSandbox sandbox(true, false);
  {
    OBS_SPAN("should_not_appear");
  }
  const std::string json = rge::obs::chrome_trace_json();
  EXPECT_EQ(json.find("should_not_appear"), std::string::npos);
}

TEST(ObsTrace, WriteChromeTraceCreatesFile) {
  ObsSandbox sandbox(true, true);
  {
    OBS_SPAN("file_span");
  }
  const std::string path = ::testing::TempDir() + "rge_obs_trace_test.json";
  ASSERT_TRUE(rge::obs::write_chrome_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("file_span"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace

#else  // !RGE_OBS_ENABLED

TEST(ObsCompiledOut, StubsAreInertConstants) {
  static_assert(!rge::obs::kCompiledIn);
  OBS_COUNT("gone", 1);
  OBS_SPAN("gone");
  EXPECT_FALSE(rge::obs::enabled());
  EXPECT_EQ(rge::obs::metrics_json(), "{}");
}

#endif
