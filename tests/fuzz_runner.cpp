// Hostile-world fuzz driver (ctest -L fuzz).
//
//   fuzz_runner --corpus            run every committed fuzz_corpus() seed
//   fuzz_runner --seed=N            run one seed (the repro entry point)
//   fuzz_runner --sweep=N           run N randomized seeds drawn from
//   fuzz_runner --base-seed=B       ... a fixed base (default below)
//
// Every failure prints the composed scenario, the violated invariants, and
// a one-line repro command; the exit code is the number of failing cases
// (capped at 125 so it never collides with signal exit codes).
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "math/rng.hpp"
#include "testing/fuzzer.hpp"

namespace {

constexpr std::uint64_t kDefaultBaseSeed = 20260808;

bool parse_u64(const char* arg, const char* prefix, std::uint64_t* out) {
  const std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  char* end = nullptr;
  *out = std::strtoull(arg + n, &end, 10);
  return end != nullptr && *end == '\0';
}

int run_seeds(const std::vector<std::uint64_t>& seeds) {
  int failures = 0;
  long long invariants = 0;
  int rejected = 0;
  for (const std::uint64_t seed : seeds) {
    const rge::testing::FuzzReport report = rge::testing::run_fuzz_case(seed);
    invariants += report.invariants_checked;
    rejected += report.traces_rejected;
    if (report.ok()) {
      std::printf("ok   seed=%" PRIu64 " invariants=%d rejected=%d/%d "
                  "uploads=%d %s\n",
                  report.seed, report.invariants_checked,
                  report.traces_rejected, report.traces_total,
                  report.uploads_admitted, report.scenario.c_str());
    } else {
      ++failures;
      std::printf("FAIL seed=%" PRIu64 " %s\n", report.seed,
                  report.scenario.c_str());
      for (const std::string& v : report.violations) {
        std::printf("  violation: %s\n", v.c_str());
      }
      std::printf("  repro: fuzz_runner --seed=%" PRIu64 "\n", report.seed);
    }
    std::fflush(stdout);
  }
  std::printf("%zu case(s), %d failure(s), %lld invariant checks, "
              "%d clean rejections\n",
              seeds.size(), failures, invariants, rejected);
  return failures > 125 ? 125 : failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool corpus = false;
  std::uint64_t single_seed = 0;
  bool have_single = false;
  std::uint64_t sweep = 0;
  std::uint64_t base_seed = kDefaultBaseSeed;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::uint64_t value = 0;
    if (std::strcmp(arg, "--corpus") == 0) {
      corpus = true;
    } else if (parse_u64(arg, "--seed=", &value)) {
      single_seed = value;
      have_single = true;
    } else if (parse_u64(arg, "--sweep=", &value)) {
      sweep = value;
    } else if (parse_u64(arg, "--base-seed=", &value)) {
      base_seed = value;
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_runner [--corpus] [--seed=N] [--sweep=N] "
                   "[--base-seed=B]\n");
      return 2;
    }
  }

  std::vector<std::uint64_t> seeds;
  if (have_single) {
    seeds.push_back(single_seed);
  } else if (sweep > 0) {
    // Draw sweep seeds from the base through the repo's own RNG, so the
    // sweep is itself reproducible: a failing drawn seed reproduces
    // directly with --seed=<printed value>.
    rge::math::Rng rng = rge::math::Rng(base_seed).fork("fuzz-sweep");
    for (std::uint64_t i = 0; i < sweep; ++i) {
      seeds.push_back(rng.engine()());
    }
  } else {
    corpus = true;
  }
  if (corpus) {
    const auto fixed = rge::testing::fuzz_corpus();
    seeds.insert(seeds.begin(), fixed.begin(), fixed.end());
  }
  return run_seeds(seeds);
}
