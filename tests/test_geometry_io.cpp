// Tests for road geometry import/export.
#include "road/geometry_io.hpp"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "math/angles.hpp"
#include "math/rng.hpp"
#include "road/network.hpp"

namespace rge::road {
namespace {

using math::deg2rad;

std::vector<math::GeoPoint> sample_geo(const Road& r, double spacing) {
  std::vector<math::GeoPoint> pts;
  for (double s = 0.0; s <= r.length_m(); s += spacing) {
    pts.push_back(r.geo_at(s));
  }
  return pts;
}

TEST(GeometryImport, Validation) {
  EXPECT_THROW(road_from_geometry({}), std::invalid_argument);
  EXPECT_THROW(road_from_geometry({math::GeoPoint{38.0, -78.0, 0.0}}),
               std::invalid_argument);
  // Points too close together.
  const math::GeoPoint p{38.0, -78.0, 0.0};
  EXPECT_THROW(road_from_geometry({p, p}), std::invalid_argument);
  // Lanes size mismatch.
  const auto q = math::destination(p, 0.0, 100.0);
  EXPECT_THROW(road_from_geometry({p, q}, {1, 1, 1}),
               std::invalid_argument);
}

TEST(GeometryImport, RoundTripsGeneratedRoad) {
  const Road original = make_table3_route(2019);
  const auto pts = sample_geo(original, 10.0);
  GeometryImportOptions opts;
  opts.name = "reimported";
  const Road imported = road_from_geometry(pts, {}, opts);

  EXPECT_NEAR(imported.length_m(), original.length_m(),
              0.01 * original.length_m());
  // Grade profile matches within the smoothing bandwidth.
  double err_acc = 0.0;
  std::size_t n = 0;
  for (double s = 100.0; s < original.length_m() - 100.0; s += 25.0) {
    err_acc += std::abs(imported.grade_at(s) - original.grade_at(s));
    ++n;
  }
  EXPECT_LT(err_acc / static_cast<double>(n), deg2rad(0.5));
  // Geometry matches.
  const auto a = original.position_at(1000.0);
  const auto b = imported.position_at(1000.0);
  EXPECT_NEAR(a.east_m, b.east_m, 5.0);
  EXPECT_NEAR(a.north_m, b.north_m, 5.0);
}

TEST(GeometryImport, HeadingFollowsPolyline) {
  // A simple L: 500 m east then 500 m north.
  std::vector<math::GeoPoint> pts;
  math::GeoPoint p{38.0, -78.0, 100.0};
  for (int i = 0; i <= 10; ++i) {
    pts.push_back(math::destination(p, math::kPi / 2.0, 50.0 * i));
  }
  const auto corner = pts.back();
  for (int i = 1; i <= 10; ++i) {
    pts.push_back(math::destination(corner, 0.0, 50.0 * i));
  }
  const Road r = road_from_geometry(pts);
  EXPECT_NEAR(r.heading_at(200.0), 0.0, 0.05);              // east
  EXPECT_NEAR(r.heading_at(800.0), math::kPi / 2.0, 0.05);  // north
}

TEST(GeometryImport, LanesFromColumn) {
  std::vector<math::GeoPoint> pts;
  std::vector<int> lanes;
  const math::GeoPoint p{38.0, -78.0, 0.0};
  for (int i = 0; i <= 20; ++i) {
    pts.push_back(math::destination(p, 0.0, 50.0 * i));
    lanes.push_back(i < 10 ? 1 : 2);
  }
  const Road r = road_from_geometry(pts, lanes);
  EXPECT_EQ(r.lanes_at(100.0), 1);
  EXPECT_EQ(r.lanes_at(900.0), 2);
  EXPECT_EQ(r.sections().size(), 2u);
}

TEST(GeometryCsv, RoundTrip) {
  const Road original = make_table3_route(7);
  std::stringstream ss;
  write_road_csv(original, ss, 10.0);
  GeometryImportOptions opts;
  const Road back = read_road_csv(ss, opts);
  EXPECT_NEAR(back.length_m(), original.length_m(),
              0.01 * original.length_m());
  EXPECT_NEAR(back.grade_at(700.0), original.grade_at(700.0),
              deg2rad(0.6));
  // Lanes column survives.
  EXPECT_EQ(back.lanes_at(original.length_m() * 0.75),
            original.lanes_at(original.length_m() * 0.75));
}

TEST(GeometryCsv, MalformedInputs) {
  {
    std::stringstream ss("38.0,-78.0\n");  // too few fields
    EXPECT_THROW(read_road_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("38.0,-78.0,abc\n");
    EXPECT_THROW(read_road_csv(ss), std::runtime_error);
  }
  {
    // Header + comments tolerated.
    std::stringstream ss;
    ss << "latitude_deg,longitude_deg,altitude_m,lanes\n# comment\n";
    math::GeoPoint p{38.0, -78.0, 10.0};
    for (int i = 0; i <= 5; ++i) {
      const auto q = math::destination(p, 0.0, 100.0 * i);
      ss << q.latitude_deg << ',' << q.longitude_deg << ",10.0,1\n";
    }
    const Road r = read_road_csv(ss);
    EXPECT_NEAR(r.length_m(), 500.0, 2.0);
  }
}

TEST(GeometryImport, NoisySurveySmoothing) {
  // A survey with 0.05 m altitude noise every 10 m: unsmoothed grades are
  // ~0.3 deg noisy; the import smoothing pulls the error down.
  const Road original = make_table3_route(3);
  auto pts = sample_geo(original, 10.0);
  math::Rng rng(4);
  for (auto& p : pts) p.altitude_m += rng.gaussian(0.0, 0.05);

  GeometryImportOptions rough;
  rough.grade_smooth_half = 0;
  GeometryImportOptions smooth;
  const Road r_rough = road_from_geometry(pts, {}, rough);
  const Road r_smooth = road_from_geometry(pts, {}, smooth);
  double e_rough = 0.0;
  double e_smooth = 0.0;
  std::size_t n = 0;
  for (double s = 100.0; s < original.length_m() - 100.0; s += 20.0) {
    e_rough += std::abs(r_rough.grade_at(s) - original.grade_at(s));
    e_smooth += std::abs(r_smooth.grade_at(s) - original.grade_at(s));
    ++n;
  }
  EXPECT_LT(e_smooth, 0.6 * e_rough);
}

}  // namespace
}  // namespace rge::road
