// Unit tests for the synthetic road networks (Table III route and the
// large-scale city network).
#include "road/network.hpp"

#include <array>
#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"

namespace rge::road {
namespace {

TEST(Table3Route, MatchesPaperStructure) {
  const Road r = make_table3_route(2019);
  EXPECT_NEAR(r.length_m(), 2160.0, 1.0);  // paper: 2.16 km

  // Section pattern from Table III: signs + - + - + - +, lanes
  // 1 1 1 1 2 2 1. The builder splits each logical section into a ramp and
  // a plateau, so sections() has 14 entries; fold pairs back together.
  const auto& secs = r.sections();
  ASSERT_EQ(secs.size(), 14u);
  constexpr std::array<int, 7> kSigns = {+1, -1, +1, -1, +1, -1, +1};
  constexpr std::array<int, 7> kLanes = {1, 1, 1, 1, 2, 2, 1};
  for (std::size_t i = 0; i < 7; ++i) {
    const auto& plateau = secs[2 * i + 1];  // constant-grade part
    EXPECT_EQ(plateau.uphill(), kSigns[i] > 0) << "section " << i;
    EXPECT_EQ(plateau.lanes, kLanes[i]) << "section " << i;
    EXPECT_GE(std::abs(plateau.mean_grade_rad), math::deg2rad(1.0));
    EXPECT_LE(std::abs(plateau.mean_grade_rad), math::deg2rad(5.0));
  }
}

TEST(Table3Route, Deterministic) {
  const Road a = make_table3_route(5);
  const Road b = make_table3_route(5);
  EXPECT_EQ(a.length_m(), b.length_m());
  EXPECT_DOUBLE_EQ(a.grade_at(700.0), b.grade_at(700.0));
  const Road c = make_table3_route(6);
  EXPECT_NE(a.grade_at(700.0), c.grade_at(700.0));
}

TEST(Table3Route, HasTwoLaneStretchForLaneChanges) {
  const Road r = make_table3_route(2019);
  double two_lane_m = 0.0;
  for (double s = 0.0; s < r.length_m(); s += 10.0) {
    if (r.lanes_at(s) >= 2) two_lane_m += 10.0;
  }
  EXPECT_GT(two_lane_m, 500.0);  // sections 4-5 and 5-6
}

TEST(CityNetwork, TotalLengthMatchesPaper) {
  const RoadNetwork net = make_city_network(1, 164.8);
  EXPECT_GE(net.total_length_m(), 164800.0);
  // Overshoot is at most one road (max road length 5 km).
  EXPECT_LE(net.total_length_m(), 164800.0 + 5100.0);
  EXPECT_GT(net.size(), 30u);
}

TEST(CityNetwork, Deterministic) {
  const RoadNetwork a = make_city_network(7, 20.0);
  const RoadNetwork b = make_city_network(7, 20.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.roads()[i].road.length_m(),
                     b.roads()[i].road.length_m());
  }
}

TEST(CityNetwork, GradeDistributionIsCityLike) {
  const RoadNetwork net = make_city_network(3, 40.0);
  std::size_t samples = 0;
  std::size_t gentle = 0;
  double max_abs = 0.0;
  for (const auto& nr : net.roads()) {
    for (double s = 0.0; s < nr.road.length_m(); s += 25.0) {
      const double g = std::abs(nr.road.grade_at(s));
      ++samples;
      if (g < math::deg2rad(2.0)) ++gentle;
      max_abs = std::max(max_abs, g);
    }
  }
  ASSERT_GT(samples, 100u);
  // Majority of the city is gentle; nothing exceeds the generator's cap.
  EXPECT_GT(static_cast<double>(gentle) / samples, 0.5);
  EXPECT_LE(max_abs, math::deg2rad(6.6));
}

TEST(CityNetwork, HasAllRoadClasses) {
  const RoadNetwork net = make_city_network(5, 60.0);
  bool has_arterial = false;
  bool has_collector = false;
  bool has_residential = false;
  for (const auto& nr : net.roads()) {
    switch (nr.road_class) {
      case RoadClass::kArterial: has_arterial = true; break;
      case RoadClass::kCollector: has_collector = true; break;
      case RoadClass::kResidential: has_residential = true; break;
    }
  }
  EXPECT_TRUE(has_arterial);
  EXPECT_TRUE(has_collector);
  EXPECT_TRUE(has_residential);
}

TEST(CityNetwork, ArterialsAreMultiLane) {
  const RoadNetwork net = make_city_network(5, 60.0);
  for (const auto& nr : net.roads()) {
    if (nr.road_class == RoadClass::kArterial) {
      EXPECT_GE(nr.road.lanes_at(nr.road.length_m() / 2.0), 2);
    }
    if (nr.road_class == RoadClass::kResidential) {
      EXPECT_EQ(nr.road.lanes_at(nr.road.length_m() / 2.0), 1);
    }
  }
}

TEST(RoadNetwork, AddAccumulates) {
  RoadNetwork net;
  EXPECT_EQ(net.size(), 0u);
  EXPECT_DOUBLE_EQ(net.total_length_m(), 0.0);
  net.add(NetworkRoad{make_table3_route(1), RoadClass::kCollector});
  EXPECT_EQ(net.size(), 1u);
  EXPECT_NEAR(net.total_length_m(), 2160.0, 1.0);
}

}  // namespace
}  // namespace rge::road
