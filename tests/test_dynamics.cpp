// Unit tests for longitudinal vehicle dynamics (the Eq. 3 force balance).
#include "vehicle/dynamics.hpp"
#include "vehicle/presets.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "math/angles.hpp"

namespace rge::vehicle {
namespace {

using math::deg2rad;

TEST(VehicleParams, DerivedQuantities) {
  VehicleParams p;
  EXPECT_NEAR(p.beta(), std::asin(0.012 / std::sqrt(1.0 + 0.012 * 0.012)),
              1e-15);
  EXPECT_NEAR(p.drag_k(), 0.5 * 1.204 * 2.3 * 0.31, 1e-12);
}

TEST(Dynamics, TorqueAccelerationRoundTrip) {
  const VehicleParams p;
  for (double v : {0.0, 5.0, 15.0, 30.0}) {
    for (double a : {-2.0, 0.0, 1.5}) {
      for (double g_deg : {-6.0, 0.0, 4.0}) {
        const double grade = deg2rad(g_deg);
        const double torque = required_torque(p, a, v, grade);
        EXPECT_NEAR(longitudinal_acceleration(p, torque, v, grade), a, 1e-10)
            << "v=" << v << " a=" << a << " grade=" << g_deg;
      }
    }
  }
}

TEST(Dynamics, CoastingDecelerates) {
  const VehicleParams p;
  // Zero torque on flat ground: drag + rolling slow the car down.
  EXPECT_LT(longitudinal_acceleration(p, 0.0, 20.0, 0.0), 0.0);
  // On a steep enough downhill, gravity wins.
  EXPECT_GT(longitudinal_acceleration(p, 0.0, 5.0, deg2rad(-8.0)), 0.0);
}

TEST(Dynamics, UphillNeedsMoreTorque) {
  const VehicleParams p;
  const double flat = required_torque(p, 0.0, 15.0, 0.0);
  const double up = required_torque(p, 0.0, 15.0, deg2rad(4.0));
  const double down = required_torque(p, 0.0, 15.0, deg2rad(-4.0));
  EXPECT_GT(up, flat);
  EXPECT_LT(down, flat);
  // Gravity term dominates: difference ~ m g sin(4 deg) * r.
  EXPECT_NEAR(up - flat,
              p.mass_kg * p.gravity * std::sin(deg2rad(4.0)) *
                  p.wheel_radius_m,
              1.0);
}

TEST(Dynamics, GradeFromStatesRecoversGrade) {
  const VehicleParams p;
  for (double g_deg : {-5.0, -1.0, 0.0, 2.0, 6.0}) {
    const double grade = deg2rad(g_deg);
    const double v = 12.0;
    const double a = 0.7;
    const double torque = required_torque(p, a, v, grade);
    // Eq. 3 with exact inputs: recovered grade must match up to the
    // small-angle treatment of rolling resistance (beta merges mu*cos
    // into a constant), i.e. within ~0.05 deg over city grades.
    EXPECT_NEAR(grade_from_states(p, torque, v, a), grade, deg2rad(0.05))
        << g_deg;
  }
}

TEST(Dynamics, GradeFromStatesClampsInsaneInputs) {
  const VehicleParams p;
  // Absurd torque would push asin out of domain; must not NaN.
  const double g = grade_from_states(p, 1e9, 10.0, 0.0);
  EXPECT_TRUE(std::isfinite(g));
  EXPECT_NEAR(g, math::kPi / 2.0 - p.beta(), 1e-12);
}

TEST(Dynamics, FlatRoadTorqueIgnoresGrade) {
  const VehicleParams p;
  EXPECT_DOUBLE_EQ(torque_from_states_flat_road(p, 10.0, 1.0),
                   required_torque(p, 1.0, 10.0, 0.0));
}

TEST(Dynamics, SpecificForceIncludesGravityLeak) {
  const VehicleParams p;
  EXPECT_DOUBLE_EQ(longitudinal_specific_force(p, 1.0, 0.0), 1.0);
  const double up = longitudinal_specific_force(p, 0.0, deg2rad(5.0));
  EXPECT_NEAR(up, p.gravity * std::sin(deg2rad(5.0)), 1e-12);
  const double down = longitudinal_specific_force(p, 0.0, deg2rad(-5.0));
  EXPECT_DOUBLE_EQ(up, -down);
}

TEST(VehiclePresets, OrderingIsPhysical) {
  const VehicleParams compact = make_compact();
  const VehicleParams sedan = make_midsize_sedan();
  const VehicleParams suv = make_suv();
  const VehicleParams van = make_delivery_van();
  // Heavier vehicles need more torque for the same hill climb.
  const double grade = deg2rad(4.0);
  const double t_compact = required_torque(compact, 0.0, 12.0, grade);
  const double t_sedan = required_torque(sedan, 0.0, 12.0, grade);
  const double t_suv = required_torque(suv, 0.0, 12.0, grade);
  const double t_van = required_torque(van, 0.0, 12.0, grade);
  EXPECT_LT(t_compact, t_sedan);
  EXPECT_LT(t_sedan, t_suv);
  EXPECT_LT(t_suv, t_van);
  // And decelerate faster when coasting (more drag area per... at least
  // the van, with the largest drag area, slows hardest at speed).
  EXPECT_LT(longitudinal_acceleration(van, 0.0, 30.0, 0.0),
            longitudinal_acceleration(compact, 0.0, 30.0, 0.0));
}

// Parameterized: heavier vehicles need proportionally more grade torque.
class MassScaling : public ::testing::TestWithParam<double> {};

TEST_P(MassScaling, GradeTorqueScalesWithMass) {
  VehicleParams p;
  p.mass_kg = GetParam();
  const double up = required_torque(p, 0.0, 10.0, deg2rad(3.0));
  const double flat = required_torque(p, 0.0, 10.0, 0.0);
  const double expected =
      p.gravity *
      (std::sin(deg2rad(3.0)) +
       p.rolling_resistance * (std::cos(deg2rad(3.0)) - 1.0)) *
      p.wheel_radius_m;
  EXPECT_NEAR((up - flat) / p.mass_kg, expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Masses, MassScaling,
                         ::testing::Values(900.0, 1479.0, 2200.0, 3500.0));

}  // namespace
}  // namespace rge::vehicle
