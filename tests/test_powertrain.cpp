// Tests for the powertrain model and the torque-based grade baseline.
#include "vehicle/powertrain.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/torque_grade.hpp"
#include "core/evaluation.hpp"
#include "math/angles.hpp"
#include "road/network.hpp"
#include "sensors/smartphone.hpp"
#include "vehicle/dynamics.hpp"
#include "vehicle/trip.hpp"

namespace rge::vehicle {
namespace {

using math::deg2rad;

Powertrain make_pt() { return Powertrain(VehicleParams{}, PowertrainParams{}); }

TEST(Powertrain, Validation) {
  PowertrainParams bad;
  bad.gear_ratios[2] = 0.0;
  EXPECT_THROW(Powertrain(VehicleParams{}, bad), std::invalid_argument);
  bad = PowertrainParams{};
  bad.efficiency = 1.5;
  EXPECT_THROW(Powertrain(VehicleParams{}, bad), std::invalid_argument);
  EXPECT_THROW(make_pt().rpm_at(10.0, 0), std::invalid_argument);
  EXPECT_THROW(make_pt().rpm_at(10.0, 9), std::invalid_argument);
}

TEST(Powertrain, RpmScalesWithSpeedAndGear) {
  const Powertrain pt = make_pt();
  EXPECT_GT(pt.rpm_at(20.0, 3), pt.rpm_at(10.0, 3));
  EXPECT_GT(pt.rpm_at(15.0, 1), pt.rpm_at(15.0, 4));  // shorter gear revs higher
  // Standstill clamps at idle.
  PowertrainParams pp;
  EXPECT_DOUBLE_EQ(pt.rpm_at(0.0, 1), pp.idle_rpm);
}

TEST(Powertrain, GearScheduleIsMonotoneInSpeed) {
  const Powertrain pt = make_pt();
  int prev = 1;
  for (double v = 1.0; v <= 35.0; v += 0.5) {
    const int g = pt.select_gear(v);
    EXPECT_GE(g, prev);  // never downshifts as speed rises
    EXPECT_GE(g, 1);
    EXPECT_LE(g, 5);
    prev = g;
  }
  EXPECT_EQ(pt.select_gear(1.0), 1);
  EXPECT_EQ(prev, 5);  // reaches top gear at highway speed
}

TEST(Powertrain, TorqueCurveShape) {
  const Powertrain pt = make_pt();
  PowertrainParams pp;
  const double at_peak = pt.max_engine_torque(pp.peak_torque_rpm);
  EXPECT_DOUBLE_EQ(at_peak, pp.peak_torque_nm);
  EXPECT_LT(pt.max_engine_torque(pp.idle_rpm), at_peak);
  EXPECT_LT(pt.max_engine_torque(pp.max_rpm), at_peak);
  EXPECT_GE(pt.max_engine_torque(pp.idle_rpm), 0.3 * pp.peak_torque_nm);
}

TEST(Powertrain, OperateRoundTripsWheelTorque) {
  const Powertrain pt = make_pt();
  for (double v : {5.0, 12.0, 25.0}) {
    for (double wheel : {-200.0, 100.0, 600.0}) {
      const auto op = pt.operate(v, wheel, /*clamp=*/false);
      EXPECT_FALSE(op.saturated);
      EXPECT_NEAR(pt.wheel_torque(op.engine_torque_nm, op.gear), wheel,
                  1e-9);
    }
  }
}

TEST(Powertrain, ClampSaturatesExtremeDemand) {
  const Powertrain pt = make_pt();
  const auto op = pt.operate(12.0, 1e5);
  EXPECT_TRUE(op.saturated);
  EXPECT_LE(op.engine_torque_nm,
            pt.max_engine_torque(op.engine_rpm) + 1e-9);
  const auto brake = pt.operate(12.0, -1e5);
  EXPECT_TRUE(brake.saturated);
  EXPECT_LT(brake.engine_torque_nm, 0.0);
}

// ------------------- torque-based grade baseline -----------------------

struct Scenario {
  road::Road road;
  Trip trip;
  sensors::SensorTrace trace;
};

Scenario make_scenario(std::uint64_t seed, bool premium = true) {
  Scenario sc{road::make_table3_route(2019), {}, {}};
  TripConfig tc;
  tc.seed = seed;
  sc.trip = simulate_trip(sc.road, tc);
  sensors::SmartphoneConfig pc;
  pc.seed = seed + 21;
  pc.premium_can = premium;
  sc.trace = sensors::simulate_sensors(sc.trip, sc.road.anchor(),
                                       VehicleParams{}, pc);
  return sc;
}

TEST(TorqueGrade, RequiresPremiumStreams) {
  const Scenario sc = make_scenario(3, /*premium=*/false);
  EXPECT_TRUE(sc.trace.engine_torque.empty());
  EXPECT_THROW(baselines::run_torque_grade(sc.trace, VehicleParams{}),
               std::invalid_argument);
}

TEST(TorqueGrade, AccurateWithPremiumHardware) {
  const Scenario sc = make_scenario(4);
  ASSERT_FALSE(sc.trace.engine_torque.empty());
  ASSERT_FALSE(sc.trace.active_gear.empty());
  const auto track =
      baselines::run_torque_grade(sc.trace, VehicleParams{});
  const auto stats = core::evaluate_track(track, sc.trip);
  // The premium method is genuinely good — the paper's complaint is the
  // hardware requirement, not the accuracy.
  EXPECT_LT(stats.mre, 0.22);
  EXPECT_LT(stats.median_abs_deg, 0.4);
}

TEST(TorqueGrade, GearBroadcastMatchesSchedule) {
  const Scenario sc = make_scenario(5);
  const Powertrain pt = make_pt();
  // Every broadcast gear equals the schedule's choice at that speed.
  std::size_t checked = 0;
  for (std::size_t i = 0; i < sc.trace.active_gear.size(); i += 7) {
    const auto& g = sc.trace.active_gear[i];
    // Find the matching CAN speed sample (same timestamps).
    for (const auto& v : sc.trace.canbus_speed) {
      if (std::abs(v.t - g.t) < 1e-9) {
        // CAN speed carries noise; allow one gear of slack near shifts.
        const int expect = pt.select_gear(v.value);
        EXPECT_NEAR(g.value, expect, 1.0);
        ++checked;
        break;
      }
    }
  }
  EXPECT_GT(checked, 20u);
}

}  // namespace
}  // namespace rge::vehicle
