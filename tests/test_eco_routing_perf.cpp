// Perf-tier budgets for network-scale eco-routing (ctest -L perf):
//
//   * an ALT fuel query over the ~10.9k-edge OSM-like city must beat the
//     legacy RouteGraph::shortest_path (std::function cost, per-edge VSP
//     re-integration) by >= 10x on mean latency;
//   * warm ALT fuel queries must stay sub-millisecond at p99.
//
// Budgets are relaxed under sanitizers (>= 3x, p99 <= 15 ms), whose
// instrumentation dominates pointer-chasing heap code. The checked-in
// perf-trajectory artifact for this workload is BENCH_eco_routing.json,
// produced by bench/bench_eco_routing (this test only enforces budgets).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "math/rng.hpp"
#include "planning/city_gen.hpp"
#include "planning/csr_graph.hpp"

namespace rge::planning {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(const Clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

constexpr double kMinSpeedup = kSanitized ? 3.0 : 10.0;
constexpr double kP99BudgetMs = kSanitized ? 15.0 : 1.0;

double percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

TEST(EcoRoutingPerf, AltBeatsLegacyDijkstraAndStaysSubMillisecond) {
  const RouteGraph g = make_osm_city();  // 52x52, ~10.9k directed edges
  const CostModel model;
  const CsrGraph csr(g, model);

  math::Rng rng(314);
  const auto hi = static_cast<std::int64_t>(g.node_count()) - 1;
  constexpr std::size_t kQueries = 300;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < kQueries; ++i) {
    pairs.emplace_back(static_cast<std::size_t>(rng.uniform_int(0, hi)),
                       static_cast<std::size_t>(rng.uniform_int(0, hi)));
  }

  const auto legacy_cost = [&model](const Edge& e) {
    const double speed =
        e.speed_mps > 0.0 ? e.speed_mps : model.default_speed_mps;
    return edge_cost_fuel(e, speed, model.vsp);
  };

  // Legacy baseline on a subset (it is the slow side by design).
  const std::size_t legacy_n = kSanitized ? 8 : 24;
  double checksum = 0.0;
  (void)g.shortest_path(pairs[0].first, pairs[0].second, legacy_cost);  // warm
  const auto t_legacy = Clock::now();
  for (std::size_t i = 0; i < legacy_n; ++i) {
    checksum +=
        g.shortest_path(pairs[i].first, pairs[i].second, legacy_cost).cost;
  }
  const double legacy_mean_ms =
      ms_since(t_legacy) / static_cast<double>(legacy_n);

  // Warm ALT (context allocation, landmark tables into cache).
  QueryContext ctx;
  (void)csr.route(pairs[0].first, pairs[0].second, Metric::kFuel, ctx, true);

  std::vector<double> alt_ms;
  alt_ms.reserve(kQueries);
  for (const auto& [from, to] : pairs) {
    const auto t0 = Clock::now();
    const auto r = csr.route(from, to, Metric::kFuel, ctx, true);
    alt_ms.push_back(ms_since(t0));
    checksum += r.cost;
  }
  ASSERT_TRUE(std::isfinite(checksum));

  const double alt_mean_ms =
      std::accumulate(alt_ms.begin(), alt_ms.end(), 0.0) /
      static_cast<double>(alt_ms.size());
  const double alt_p50 = percentile(alt_ms, 0.50);
  const double alt_p99 = percentile(alt_ms, 0.99);
  const double speedup = legacy_mean_ms / alt_mean_ms;

  RecordProperty("legacy_mean_ms", std::to_string(legacy_mean_ms));
  RecordProperty("alt_mean_ms", std::to_string(alt_mean_ms));
  RecordProperty("alt_p99_ms", std::to_string(alt_p99));

  EXPECT_GE(speedup, kMinSpeedup)
      << "legacy mean " << legacy_mean_ms << " ms vs ALT mean " << alt_mean_ms
      << " ms (p50 " << alt_p50 << " ms)";
  EXPECT_LE(alt_p99, kP99BudgetMs)
      << "ALT fuel-query p99 " << alt_p99 << " ms (p50 " << alt_p50
      << " ms) over " << kQueries << " warm queries";
}

}  // namespace
}  // namespace rge::planning
