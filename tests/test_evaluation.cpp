// Unit tests for the evaluation helpers.
#include "core/evaluation.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "math/angles.hpp"
#include "math/stats.hpp"
#include "road/network.hpp"
#include "road/road.hpp"
#include "sensors/smartphone.hpp"
#include "vehicle/trip.hpp"

namespace rge::core {
namespace {

using math::deg2rad;

vehicle::Trip make_trip() {
  road::RoadBuilder b("eval-road");
  b.add_straight(500.0, deg2rad(2.0));
  b.add_straight(500.0, deg2rad(-1.0));
  vehicle::TripConfig tc;
  tc.seed = 1;
  tc.allow_lane_changes = false;
  return vehicle::simulate_trip(b.build(), tc);
}

TEST(Evaluation, TruthGradeAtTimes) {
  const vehicle::Trip trip = make_trip();
  const std::vector<double> ts{0.0, trip.duration_s() / 4.0,
                               trip.duration_s()};
  const auto grades = truth_grade_at_times(trip, ts);
  ASSERT_EQ(grades.size(), 3u);
  EXPECT_NEAR(grades[0], deg2rad(2.0), deg2rad(0.2));
  EXPECT_NEAR(grades[2], deg2rad(-1.0), deg2rad(0.2));
  // Clamping before start / after end.
  const auto clamped =
      truth_grade_at_times(trip, std::vector<double>{-10.0, 1e9});
  EXPECT_DOUBLE_EQ(clamped[0], trip.states.front().grade);
  EXPECT_DOUBLE_EQ(clamped[1], trip.states.back().grade);
}

TEST(Evaluation, TruthGradeAtDistances) {
  const vehicle::Trip trip = make_trip();
  const auto grades =
      truth_grade_at_distances(trip, std::vector<double>{250.0, 750.0});
  EXPECT_NEAR(grades[0], deg2rad(2.0), deg2rad(0.05));
  EXPECT_NEAR(grades[1], deg2rad(-1.0), deg2rad(0.05));
}

TEST(Evaluation, EmptyInputsThrow) {
  const vehicle::Trip trip = make_trip();
  GradeTrack empty;
  EXPECT_THROW(evaluate_track(empty, trip), std::invalid_argument);
  vehicle::Trip no_states;
  EXPECT_THROW(
      truth_grade_at_times(no_states, std::vector<double>{1.0}),
      std::invalid_argument);
}

TEST(Evaluation, PerfectTrackHasZeroError) {
  const vehicle::Trip trip = make_trip();
  GradeTrack track;
  track.source = "perfect";
  for (std::size_t i = 0; i < trip.states.size(); i += 50) {
    track.t.push_back(trip.states[i].t);
    track.grade.push_back(trip.states[i].grade);
    track.grade_var.push_back(1e-6);
    track.speed.push_back(trip.states[i].speed);
    track.s.push_back(trip.states[i].s);
  }
  const TrackErrorStats stats = evaluate_track(track, trip, 0.0);
  EXPECT_NEAR(stats.mae_rad, 0.0, 1e-9);
  EXPECT_NEAR(stats.mre, 0.0, 1e-9);
  EXPECT_NEAR(stats.median_abs_deg, 0.0, 1e-9);
}

TEST(Evaluation, ConstantOffsetTrackHasThatError) {
  const vehicle::Trip trip = make_trip();
  GradeTrack track;
  const double offset = deg2rad(0.5);
  for (std::size_t i = 0; i < trip.states.size(); i += 50) {
    track.t.push_back(trip.states[i].t);
    track.grade.push_back(trip.states[i].grade + offset);
    track.grade_var.push_back(1e-6);
    track.speed.push_back(trip.states[i].speed);
    track.s.push_back(trip.states[i].s);
  }
  const TrackErrorStats stats = evaluate_track(track, trip, 0.0);
  EXPECT_NEAR(stats.mae_rad, offset, 1e-9);
  EXPECT_NEAR(stats.median_abs_deg, 0.5, 1e-6);
  EXPECT_EQ(stats.abs_errors_deg.size(), stats.positions_m.size());
  // Positions should be nondecreasing along the drive.
  for (std::size_t i = 1; i < stats.positions_m.size(); ++i) {
    EXPECT_GE(stats.positions_m[i], stats.positions_m[i - 1] - 1e-9);
  }
}

TEST(Evaluation, SkipInitialExcludesTransient) {
  const vehicle::Trip trip = make_trip();
  GradeTrack track;
  for (std::size_t i = 0; i < trip.states.size(); i += 50) {
    const double t = trip.states[i].t;
    track.t.push_back(t);
    // Huge error in the first 10 seconds, perfect afterwards.
    track.grade.push_back(trip.states[i].grade +
                          (t < 10.0 ? deg2rad(20.0) : 0.0));
    track.grade_var.push_back(1e-6);
    track.speed.push_back(trip.states[i].speed);
    track.s.push_back(trip.states[i].s);
  }
  const TrackErrorStats with_skip = evaluate_track(track, trip, 15.0);
  const TrackErrorStats no_skip = evaluate_track(track, trip, 0.0);
  EXPECT_NEAR(with_skip.mae_rad, 0.0, 1e-9);
  EXPECT_GT(no_skip.mae_rad, deg2rad(0.5));
  // Skipping everything throws.
  EXPECT_THROW(evaluate_track(track, trip, 1e9), std::invalid_argument);
}

TEST(Evaluation, ElevationFromPerfectTrackMatchesRoad) {
  road::RoadBuilder b("elev");
  b.add_straight(400.0, deg2rad(3.0));
  b.add_straight(400.0, deg2rad(-1.5));
  const road::Road r = b.build();
  GradeTrack track;
  for (double s = 0.0; s <= r.length_m(); s += 5.0) {
    track.t.push_back(s / 10.0);
    track.s.push_back(s);
    track.grade.push_back(r.grade_at(s));
    track.grade_var.push_back(1e-6);
    track.speed.push_back(10.0);
  }
  const auto z = elevation_from_track(track);
  ASSERT_EQ(z.size(), track.size());
  EXPECT_DOUBLE_EQ(z.front(), 0.0);
  // Peak near s=400 at 400*sin(3 deg) ~ 20.9 m; end near 20.9 - 10.5 m.
  const double peak = 400.0 * std::sin(deg2rad(3.0));
  const double end = peak - 400.0 * std::sin(deg2rad(1.5));
  EXPECT_NEAR(z[80], peak, 0.3);
  EXPECT_NEAR(z.back(), end, 0.5);
}

TEST(Evaluation, ElevationFromEstimatedTrackBeatsBarometer) {
  // The gradient-integral elevation from a real estimation run should be
  // far smoother than the barometer's metre-level readings.
  const road::Road r = road::make_table3_route(2019);
  vehicle::TripConfig tc;
  tc.seed = 12;
  const auto trip = vehicle::simulate_trip(r, tc);
  sensors::SmartphoneConfig pc;
  pc.seed = 13;
  const auto trace = sensors::simulate_sensors(trip, r.anchor(),
                                               vehicle::VehicleParams{}, pc);
  const auto res = estimate_gradient(trace, vehicle::VehicleParams{});
  const auto z = elevation_from_track(res.fused);
  // Compare against truth altitude at the same timestamps.
  const auto& tr = res.fused;
  std::size_t si = 0;
  std::vector<double> err;
  for (std::size_t i = 0; i < tr.t.size(); ++i) {
    while (si + 1 < trip.states.size() && trip.states[si].t < tr.t[i]) ++si;
    err.push_back(std::abs(z[i] - trip.states[si].altitude));
  }
  // Relative elevation within a couple of metres over 2.16 km — better
  // than the barometer's drift even before fusing multiple drives.
  EXPECT_LT(math::median(err), 3.0);
}

}  // namespace
}  // namespace rge::core
