// Batched resampling parity: resample_positions/resample_sorted are
// bit-exact against per-query locate()/LinearInterpolator in EVERY build
// mode — these kernels are compiled with default flags on purpose, so the
// assertions here are ==, never near, regardless of RGE_SIMD.
#include "math/interp_batch.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "math/interp.hpp"
#include "math/rng.hpp"

namespace rge::math {
namespace {

std::vector<double> random_sorted(Rng& rng, std::size_t n, double lo,
                                  double hi) {
  std::vector<double> xs(n);
  double x = lo;
  for (std::size_t i = 0; i < n; ++i) {
    x += rng.uniform(0.0, (hi - lo) / static_cast<double>(n));
    xs[i] = x;
  }
  return xs;
}

TEST(InterpBatch, PositionsMatchLocateBitExact) {
  Rng rng(21);
  const auto keys = random_sorted(rng, 300, 0.0, 100.0);
  // Queries sweep past both ends and across every bracket, including
  // exact key hits.
  std::vector<double> queries;
  for (double q = keys.front() - 5.0; q <= keys.back() + 5.0; q += 0.21) {
    queries.push_back(q);
  }
  for (std::size_t i = 0; i < keys.size(); i += 7) queries.push_back(keys[i]);
  std::sort(queries.begin(), queries.end());

  std::vector<InterpPos> out(queries.size());
  resample_positions(keys, queries, out);
  for (std::size_t k = 0; k < queries.size(); ++k) {
    const InterpPos ref = locate(keys, queries[k]);
    EXPECT_EQ(out[k].lo, ref.lo) << "query " << k;
    EXPECT_EQ(out[k].hi, ref.hi) << "query " << k;
    EXPECT_EQ(out[k].f, ref.f) << "query " << k;
  }
}

TEST(InterpBatch, SortedResampleMatchesInterpolatorBitExact) {
  Rng rng(22);
  const auto keys = random_sorted(rng, 500, 0.0, 250.0);
  std::vector<double> vals(keys.size());
  for (auto& v : vals) v = rng.gaussian(0.0, 3.0);
  const LinearInterpolator interp(keys, vals);

  std::vector<double> queries;
  for (double q = keys.front() - 2.0; q <= keys.back() + 2.0; q += 0.117) {
    queries.push_back(q);
  }
  std::vector<double> out(queries.size());
  resample_sorted(keys, vals, queries, out);
  for (std::size_t k = 0; k < queries.size(); ++k) {
    EXPECT_EQ(out[k], interp(queries[k])) << "query " << k;
  }
}

TEST(InterpBatch, DuplicateKeysMatchScalarTieHandling) {
  // Repeated keys produce zero-width brackets; the scalar locate() puts
  // f = 0 there, and the batch walker must agree (LinearInterpolator
  // rejects duplicate knots, so the reference here is locate() itself).
  const std::vector<double> keys = {0.0, 1.0, 1.0, 1.0, 2.0, 3.0};
  const std::vector<double> vals = {0.0, 10.0, 20.0, 30.0, 40.0, 50.0};
  std::vector<double> queries;
  for (double q = -0.5; q <= 3.5; q += 0.05) queries.push_back(q);
  std::vector<double> out(queries.size());
  resample_sorted(keys, vals, queries, out);
  std::vector<InterpPos> pos(queries.size());
  resample_positions(keys, queries, pos);
  for (std::size_t k = 0; k < queries.size(); ++k) {
    const InterpPos ref = locate(keys, queries[k]);
    EXPECT_EQ(pos[k].lo, ref.lo);
    EXPECT_EQ(pos[k].hi, ref.hi);
    EXPECT_EQ(pos[k].f, ref.f);
    const double expect =
        vals[ref.lo] * (1.0 - ref.f) + vals[ref.hi] * ref.f;
    EXPECT_EQ(out[k], expect);
  }
}

TEST(InterpBatch, SingleKeyClampsEverywhere) {
  const std::vector<double> keys = {5.0};
  const std::vector<double> vals = {42.0};
  const std::vector<double> queries = {-1.0, 5.0, 9.0};
  std::vector<double> out(queries.size());
  resample_sorted(keys, vals, queries, out);
  for (double v : out) EXPECT_EQ(v, 42.0);
}

TEST(InterpBatch, InputValidation) {
  const std::vector<double> keys = {0.0, 1.0};
  const std::vector<double> vals = {0.0, 1.0};
  const std::vector<double> unsorted = {1.0, 0.5};
  const std::vector<double> empty;
  std::vector<double> out(2);
  std::vector<InterpPos> pos(2);
  EXPECT_THROW(resample_sorted(empty, empty, keys, out),
               std::invalid_argument);
  EXPECT_THROW(resample_sorted(keys, vals, unsorted, out),
               std::invalid_argument);
  std::vector<double> short_out(1);
  EXPECT_THROW(resample_sorted(keys, vals, keys, short_out),
               std::invalid_argument);
  EXPECT_THROW(resample_positions(empty, keys, pos),
               std::invalid_argument);
}

}  // namespace
}  // namespace rge::math
